open Helpers
module MC = Comdiac.Montecarlo

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

(* --- pool combinators --------------------------------------------------- *)

let test_map_matches_sequential () =
  let xs = List.init 1000 (fun i -> i - 500) in
  let f x = (x * 7919) + (x mod 13) in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map with %d jobs" jobs)
        expected
        (Par.Pool.map ~jobs f xs))
    [ 1; 2; 8 ];
  Alcotest.(check (list int)) "empty input" [] (Par.Pool.map ~jobs:4 f []);
  Alcotest.(check (list int)) "singleton" [ f 3 ] (Par.Pool.map ~jobs:8 f [ 3 ])

let test_map_reduce () =
  let xs = List.init 501 Fun.id in
  let expected = List.fold_left (fun acc x -> acc + (x * x)) 0 xs in
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "sum of squares with %d jobs" jobs)
        expected
        (Par.Pool.map_reduce ~jobs ~map:(fun x -> x * x) ~reduce:( + ) 0 xs))
    [ 1; 2; 8 ];
  Alcotest.(check int) "empty list is init" 42
    (Par.Pool.map_reduce ~jobs:4 ~map:Fun.id ~reduce:( + ) 42 [])

(* --- exception handling -------------------------------------------------- *)

exception Boom of int

let test_exception_propagation () =
  (match
     Par.Pool.map ~jobs:4
       (fun x -> if x = 17 then raise (Boom x) else x)
       (List.init 64 Fun.id)
   with
   | _ -> Alcotest.fail "expected the task exception to propagate"
   | exception Boom 17 -> ());
  (* the pool must survive a failed batch and keep serving *)
  Alcotest.(check (list int))
    "pool serves the next batch" [ 0; 2; 4; 6 ]
    (Par.Pool.map ~jobs:4 (fun x -> 2 * x) [ 0; 1; 2; 3 ])

(* --- monte carlo determinism --------------------------------------------- *)

let design =
  lazy
    (Comdiac.Folded_cascode.size ~proc ~kind ~spec
       ~parasitics:Comdiac.Parasitics.single_fold)

let test_montecarlo_schedule_independent () =
  let amp = (Lazy.force design).Comdiac.Folded_cascode.amp in
  let seq = MC.run ~seed:11 ~n:6 ~jobs:1 ~proc ~kind ~spec amp in
  let par = MC.run ~seed:11 ~n:6 ~jobs:4 ~proc ~kind ~spec amp in
  Alcotest.(check int) "same sample count"
    (List.length seq.MC.samples)
    (List.length par.MC.samples);
  (* bit-identical sample-for-sample; compare (not =) treats nan as equal *)
  Alcotest.(check bool) "samples bit-identical" true
    (compare seq.MC.samples par.MC.samples = 0);
  Alcotest.(check bool) "stats bit-identical" true
    (compare seq.MC.offset_stats par.MC.offset_stats = 0)

(* --- splitmix streams ----------------------------------------------------- *)

let test_splitmix_streams () =
  let drain st = List.init 8 (fun _ -> Par.Splitmix.float st) in
  let a = drain (Par.Splitmix.create ~stream:0 42) in
  let a' = drain (Par.Splitmix.create ~stream:0 42) in
  let b = drain (Par.Splitmix.create ~stream:1 42) in
  let c = drain (Par.Splitmix.create ~stream:0 43) in
  Alcotest.(check bool) "reproducible" true (a = a');
  Alcotest.(check bool) "streams differ" true (a <> b);
  Alcotest.(check bool) "seeds differ" true (a <> c);
  List.iter
    (fun u ->
      Alcotest.(check bool) "uniform draw in [0,1)" true (u >= 0.0 && u < 1.0))
    (a @ b @ c)

(* --- telemetry ------------------------------------------------------------ *)

let test_pool_telemetry () =
  Obs.Config.with_enabled true (fun () ->
    Obs.Trace.reset ();
    Obs.Metrics.reset ();
    let _ = Par.Pool.map ~jobs:4 (fun x -> x + 1) (List.init 32 Fun.id) in
    Alcotest.(check bool) "par.tasks counted" true
      (Obs.Metrics.counter "par.tasks" >= 1.0);
    Alcotest.(check bool) "queue depth observed" true
      (Obs.Metrics.hist_stats "par.queue_depth" <> None);
    let tasks =
      List.filter (fun s -> s.Obs.Trace.name = "par.task") (Obs.Trace.spans ())
    in
    Alcotest.(check bool) "par.task spans recorded" true (tasks <> []);
    (* per-task latency accounting: queue-wait and run-time histograms *)
    (match Obs.Metrics.hist_stats "par.task_run_us" with
     | None -> Alcotest.fail "par.task_run_us missing"
     | Some s -> Alcotest.(check bool) "one run sample per chunk" true
                   (s.Obs.Metrics.count >= 4));
    (match Obs.Metrics.hist_stats "par.queue_wait_us" with
     | None -> Alcotest.fail "par.queue_wait_us missing"
     | Some s ->
       Alcotest.(check bool) "queue wait is non-negative" true
         (s.Obs.Metrics.min >= 0.0));
    Alcotest.(check bool) "chunk sizes observed" true
      (Obs.Metrics.hist_stats "par.chunk_items" <> None);
    Alcotest.(check bool) "batch task counts observed" true
      (Obs.Metrics.hist_stats "par.batch_tasks" <> None);
    Obs.Trace.reset ();
    Obs.Metrics.reset ())

let test_pool_accounting () =
  (* utilization accounts work with telemetry off — they are always on;
     pin the chunk size so the chunk count is exact despite the
     adaptive planner *)
  Par.Pool.reset_stats ();
  let _ = Par.Pool.map ~jobs:4 ~chunk:16 (fun x -> x * x) (List.init 64 Fun.id) in
  let stats = Par.Pool.worker_stats () in
  Alcotest.(check bool) "at least the calling domain accounted" true
    (stats <> []);
  let total_tasks =
    List.fold_left (fun acc w -> acc + w.Par.Pool.ws_tasks) 0 stats
  in
  Alcotest.(check int) "every chunk accounted exactly once" 4 total_tasks;
  List.iter
    (fun (w : Par.Pool.worker_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d role" w.Par.Pool.ws_domain)
        true
        (w.Par.Pool.ws_role = "worker" || w.Par.Pool.ws_role = "caller");
      check_in_range "busy fraction" 0.0 1.0 w.Par.Pool.ws_busy_frac;
      Alcotest.(check bool) "busy time consistent with tasks" true
        (w.Par.Pool.ws_tasks = 0 || w.Par.Pool.ws_busy_us > 0.0))
    stats;
  (* sequential fast path never touches the pool or the accounts *)
  let _ = Par.Pool.map ~jobs:1 (fun x -> x + 1) (List.init 8 Fun.id) in
  Alcotest.(check int) "jobs=1 bypasses accounting" 4
    (List.fold_left (fun acc w -> acc + w.Par.Pool.ws_tasks) 0
       (Par.Pool.worker_stats ()));
  (* ...unless the pool is forced, which is how benches measure the
     honest jobs=1 pool overhead *)
  Par.Pool.reset_stats ();
  Par.Pool.with_pool_forced (fun () ->
    ignore (Par.Pool.map ~jobs:1 ~chunk:4 (fun x -> x) (List.init 8 Fun.id)));
  Alcotest.(check int) "forced pool accounts at jobs=1" 2
    (List.fold_left (fun acc w -> acc + w.Par.Pool.ws_tasks) 0
       (Par.Pool.worker_stats ()));
  Par.Pool.reset_stats ();
  Alcotest.(check int) "reset zeroes tasks" 0
    (List.fold_left (fun acc w -> acc + w.Par.Pool.ws_tasks) 0
       (Par.Pool.worker_stats ()))

(* --- queue-wait accounting ------------------------------------------------ *)

(* Regression: queue wait must be stamped at the actual deque push, not
   at batch-build time.  Six 25 ms chunks drained one after another by a
   single forced-pool domain would charge the last chunk ~125 ms under
   batch-time stamping; push-time stamping charges each chunk at most
   ~one predecessor's run time. *)
let test_queue_wait_stamped_at_push () =
  Obs.Config.with_enabled true (fun () ->
    Obs.Metrics.reset ();
    Par.Pool.with_pool_forced (fun () ->
      Par.Pool.parallel_for ~jobs:1 ~chunk:1 6 (fun _ -> Unix.sleepf 0.025));
    (match Obs.Metrics.hist_stats "par.queue_wait_us" with
     | None -> Alcotest.fail "par.queue_wait_us missing"
     | Some s ->
       Alcotest.(check bool) "wait non-negative" true (s.Obs.Metrics.min >= 0.0);
       Alcotest.(check bool) "wait reflects deque time, not batch age" true
         (s.Obs.Metrics.max < 70_000.0));
    Obs.Metrics.reset ())

(* --- stealing ------------------------------------------------------------- *)

let test_steal_stats_and_warmup () =
  Par.Pool.reset_stats ();
  let xs = List.init 8 Fun.id in
  Par.Pool.set_stall_hook (Some (fun _ -> Unix.sleepf 0.01));
  Fun.protect ~finally:(fun () -> Par.Pool.set_stall_hook None) (fun () ->
    Alcotest.(check (list int))
      "result correct under stalls"
      (List.map (fun x -> x * 3) xs)
      (Par.Pool.map ~jobs:4 ~chunk:1 (fun x -> x * 3) xs));
  let stats = Par.Pool.worker_stats () in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 stats in
  let steals = sum (fun w -> w.Par.Pool.ws_steals) in
  let attempts = sum (fun w -> w.Par.Pool.ws_steal_attempts) in
  Alcotest.(check bool) "stalled chunks got stolen" true (steals >= 1);
  Alcotest.(check bool) "attempts >= steals" true (attempts >= steals);
  Alcotest.(check bool) "a worker domain exists" true
    (List.exists (fun w -> w.Par.Pool.ws_role = "worker") stats);
  List.iter
    (fun (w : Par.Pool.worker_stat) ->
      if w.Par.Pool.ws_role = "worker" then
        Alcotest.(check bool)
          (Printf.sprintf "domain %d warm-up recorded" w.Par.Pool.ws_domain)
          true
          (w.Par.Pool.ws_warmup_us >= 0.0))
    stats;
  Par.Pool.reset_stats ()

(* --- qcheck: chunked parallel_for covers every index exactly once --------- *)

let prop_parallel_for_exact_cover =
  QCheck.Test.make ~count:60 ~name:"parallel_for covers every index exactly once"
    QCheck.(
      triple (int_range 0 300) (int_range 1 8) (int_range 1 37))
    (fun (n, jobs, chunk) ->
      let hits = Array.make (max n 1) 0 in
      (* chunks are disjoint index ranges, so each cell has one writer *)
      Par.Pool.parallel_for ~jobs ~chunk n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.for_all (fun c -> c = 1) (Array.sub hits 0 n))

(* --- qcheck: results are schedule independent ----------------------------- *)

(* map / map_reduce / parallel_for must be bit-identical across jobs ∈
   {1, 2, 8}, with and without stealing, and with random worker stalls
   injected to force steals mid-batch.  map produces floats (bit
   compared); map_reduce uses ints so associativity holds exactly. *)
let prop_schedule_independent =
  QCheck.Test.make ~count:12
    ~name:"map/map_reduce/parallel_for bit-identical across jobs and stealing"
    QCheck.(triple (int_range 1 120) bool (int_range 0 999))
    (fun (n, steal, seed) ->
      let xs = List.init n Fun.id in
      let f x = Par.Splitmix.float (Par.Splitmix.create ~stream:x seed) in
      let map_exp = List.map f xs in
      let mr_exp = List.fold_left (fun acc x -> acc + (x * x) - x) 0 xs in
      let for_exp = Array.init n (fun i -> f (i + n)) in
      let stall_on = seed land 7 in
      Par.Pool.set_stealing steal;
      Par.Pool.set_stall_hook
        (Some (fun ci -> if ci land 7 = stall_on then Unix.sleepf 0.002));
      Fun.protect
        ~finally:(fun () ->
          Par.Pool.set_stall_hook None;
          Par.Pool.set_stealing true)
        (fun () ->
          List.for_all
            (fun jobs ->
              let got = Par.Pool.map ~jobs f xs in
              let mr =
                Par.Pool.map_reduce ~jobs
                  ~map:(fun x -> (x * x) - x)
                  ~reduce:( + ) 0 xs
              in
              let arr = Array.make n 0.0 in
              Par.Pool.parallel_for ~jobs n (fun i -> arr.(i) <- f (i + n));
              compare got map_exp = 0 && mr = mr_exp
              && compare arr for_exp = 0)
            [ 1; 2; 8 ]))

let suite =
  ( "par",
    [
      case "pool map matches sequential map" test_map_matches_sequential;
      case "map_reduce matches sequential fold" test_map_reduce;
      case "exceptions propagate without wedging" test_exception_propagation;
      case "monte carlo is schedule independent"
        test_montecarlo_schedule_independent;
      case "splitmix streams are independent" test_splitmix_streams;
      case "pool telemetry" test_pool_telemetry;
      case "pool utilization accounting" test_pool_accounting;
      case "queue wait stamped at deque push" test_queue_wait_stamped_at_push;
      case "stealing statistics and warm-up" test_steal_stats_and_warmup;
    ]
    @ qcheck_cases
        [ prop_parallel_for_exact_cover; prop_schedule_independent ] )

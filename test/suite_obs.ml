(* Telemetry subsystem: spans, metrics, exporters, and the integration
   with the synthesis flow.

   Every test that enables telemetry restores the disabled state on exit
   (via [Obs.Config.with_enabled]) so the rest of the suite keeps running
   with zero-cost instrumentation. *)

open Helpers

let with_telemetry f =
  Obs.Config.with_enabled true (fun () ->
    Obs.Trace.reset ();
    Obs.Metrics.reset ();
    Fun.protect ~finally:(fun () ->
      Obs.Trace.reset ();
      Obs.Metrics.reset ())
      f)

(* --- spans ----------------------------------------------------------- *)

let test_span_nesting () =
  with_telemetry (fun () ->
    Obs.Trace.with_span "outer" (fun () ->
      Obs.Trace.with_span "inner" (fun () -> ());
      Obs.Trace.with_span "inner" (fun () -> ()));
    let spans = Obs.Trace.spans () in
    Alcotest.(check int) "three spans" 3 (List.length spans);
    (* completion order: children complete before their parent *)
    let names = List.map (fun s -> s.Obs.Trace.name) spans in
    Alcotest.(check (list string)) "completion order"
      [ "inner"; "inner"; "outer" ] names;
    let outer = List.nth spans 2 and inner = List.nth spans 0 in
    Alcotest.(check int) "outer at depth 0" 0 outer.Obs.Trace.depth;
    Alcotest.(check int) "inner at depth 1" 1 inner.Obs.Trace.depth;
    if inner.Obs.Trace.ts_us < outer.Obs.Trace.ts_us then
      Alcotest.fail "child started before parent";
    if
      inner.Obs.Trace.ts_us +. inner.Obs.Trace.dur_us
      > outer.Obs.Trace.ts_us +. outer.Obs.Trace.dur_us +. 1.0
    then Alcotest.fail "child outlived parent";
    Alcotest.(check int) "stack rebalanced" 0 (Obs.Trace.open_depth ()))

let test_span_exception () =
  with_telemetry (fun () ->
    (try
       Obs.Trace.with_span "boom" (fun () -> failwith "expected")
     with Failure _ -> ());
    match Obs.Trace.spans () with
    | [ s ] ->
      Alcotest.(check bool) "error arg recorded" true
        (List.mem_assoc "error" s.Obs.Trace.args);
      Alcotest.(check int) "no dangling open span" 0 (Obs.Trace.open_depth ())
    | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

let test_span_args () =
  with_telemetry (fun () ->
    Obs.Trace.with_span ~args:[ ("k", Obs.Trace.Int 1) ] "s" (fun () ->
      Obs.Trace.add_arg "late" (Obs.Trace.Float 2.5));
    match Obs.Trace.spans () with
    | [ s ] ->
      Alcotest.(check bool) "initial arg" true
        (List.mem_assoc "k" s.Obs.Trace.args);
      Alcotest.(check bool) "late arg" true
        (List.mem_assoc "late" s.Obs.Trace.args)
    | _ -> Alcotest.fail "expected exactly one span")

(* --- metrics --------------------------------------------------------- *)

let test_counter_accumulation () =
  with_telemetry (fun () ->
    Obs.Metrics.incr "c";
    Obs.Metrics.incr ~by:2.0 "c";
    Obs.Metrics.add "c" 3.0;
    check_close "counter accumulates" 6.0 (Obs.Metrics.counter "c");
    Obs.Metrics.set "g" 1.0;
    Obs.Metrics.set "g" 4.0;
    (match Obs.Metrics.gauge "g" with
     | Some v -> check_close "gauge last-write-wins" 4.0 v
     | None -> Alcotest.fail "gauge missing");
    List.iter (Obs.Metrics.observe "h") [ 1.0; 2.0; 3.0 ];
    (match Obs.Metrics.hist_stats "h" with
     | Some st ->
       Alcotest.(check int) "hist count" 3 st.Obs.Metrics.count;
       check_close "hist mean" 2.0 st.Obs.Metrics.mean;
       check_close "hist min" 1.0 st.Obs.Metrics.min;
       check_close "hist max" 3.0 st.Obs.Metrics.max
     | None -> Alcotest.fail "histogram missing");
    Alcotest.(check (list (float 1e-9))) "ordered series" [ 1.0; 2.0; 3.0 ]
      (Obs.Metrics.values "h"))

let test_disabled_noop () =
  (* the suite runs with telemetry off; nothing must be recorded *)
  Alcotest.(check bool) "disabled by default" false (Obs.Config.enabled ());
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Obs.Trace.with_span "ghost" (fun () -> Obs.Metrics.incr "ghost");
  Obs.Metrics.observe "ghost_h" 1.0;
  Alcotest.(check int) "no spans recorded" 0 (Obs.Trace.span_count ());
  check_close "no counter recorded" 0.0 (Obs.Metrics.counter "ghost");
  Alcotest.(check int) "no metrics recorded" 0
    (List.length (Obs.Metrics.snapshot ()));
  (* with_span must still return f's value and propagate exceptions *)
  Alcotest.(check int) "transparent return" 7
    (Obs.Trace.with_span "ghost" (fun () -> 7))

(* --- JSON round-trip ------------------------------------------------- *)

let parse_ok s =
  match Obs.Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "JSON parse error: %s" e

let test_json_parser () =
  let j = parse_ok {|{"a": [1, -2.5e1, true, null], "b\n": "xé"}|} in
  (match Obs.Json.member "a" j with
   | Some (Obs.Json.Arr [ Num a; Num b; Bool true; Null ]) ->
     check_close "num" 1.0 a;
     check_close "neg exp num" (-25.0) b
   | _ -> Alcotest.fail "array member mismatch");
  (match Obs.Json.member "b\n" j with
   | Some (Obs.Json.Str s) -> Alcotest.(check string) "escapes" "x\xc3\xa9" s
   | _ -> Alcotest.fail "escaped key missing");
  (* emitter output must re-parse to the same value *)
  Alcotest.(check bool) "round trip" true
    (parse_ok (Obs.Json.to_string j) = j);
  match Obs.Json.parse "{\"trailing\": 1" with
  | Ok _ -> Alcotest.fail "accepted truncated document"
  | Error _ -> ()

let test_chrome_trace_round_trip () =
  with_telemetry (fun () ->
    Obs.Trace.with_span ~cat:"test"
      ~args:[ ("iters", Obs.Trace.Int 3) ]
      "parent"
      (fun () -> Obs.Trace.with_span "child" (fun () -> ()));
    Obs.Metrics.incr "events";
    let doc = parse_ok (Obs.Reporter.trace_json_string ()) in
    let events =
      match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "traceEvents missing"
    in
    Alcotest.(check int) "one event per span" 2 (List.length events);
    List.iter
      (fun ev ->
        (match Option.bind (Obs.Json.member "ph" ev) Obs.Json.to_str with
         | Some "X" -> ()
         | _ -> Alcotest.fail "expected complete events (ph = X)");
        List.iter
          (fun field ->
            match Option.bind (Obs.Json.member field ev) Obs.Json.to_float with
            | Some v when v >= 0.0 -> ()
            | _ -> Alcotest.failf "field %s missing or negative" field)
          [ "ts"; "dur"; "pid"; "tid" ])
      events;
    let names =
      List.filter_map
        (fun ev -> Option.bind (Obs.Json.member "name" ev) Obs.Json.to_str)
        events
    in
    Alcotest.(check bool) "span names exported" true
      (List.mem "parent" names && List.mem "child" names);
    let parent =
      List.find
        (fun ev ->
          Option.bind (Obs.Json.member "name" ev) Obs.Json.to_str
          = Some "parent")
        events
    in
    (match
       Option.bind (Obs.Json.member "args" parent) (Obs.Json.member "iters")
     with
     | Some (Obs.Json.Num n) -> check_close "span arg exported" 3.0 n
     | _ -> Alcotest.fail "span args missing from event");
    match
      Option.bind (Obs.Json.member "otherData" doc) (fun m ->
        Option.bind (Obs.Json.member "events" m) (Obs.Json.member "value"))
    with
    | Some (Obs.Json.Num n) -> check_close "metrics in otherData" 1.0 n
    | _ -> Alcotest.fail "metrics snapshot missing from otherData")

(* --- span ring buffer ------------------------------------------------- *)

let test_trace_ring_cap () =
  with_telemetry (fun () ->
    let old_cap = Obs.Trace.capacity () in
    Fun.protect ~finally:(fun () -> Obs.Trace.set_cap old_cap) @@ fun () ->
    Obs.Trace.set_cap 4;
    for i = 1 to 10 do
      Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
    done;
    Alcotest.(check int) "retains cap spans" 4 (Obs.Trace.span_count ());
    Alcotest.(check int) "overwrites counted" 6 (Obs.Trace.dropped_count ());
    check_close "dropped metric" 6.0 (Obs.Metrics.counter "obs.trace.dropped");
    (* oldest -> newest, oldest spans gone *)
    Alcotest.(check (list string)) "keeps the newest spans"
      [ "s7"; "s8"; "s9"; "s10" ]
      (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans ()));
    Obs.Trace.set_cap 8;
    Alcotest.(check int) "set_cap resets retained" 0 (Obs.Trace.span_count ());
    Alcotest.(check int) "set_cap resets dropped" 0 (Obs.Trace.dropped_count ()))

(* --- profiler --------------------------------------------------------- *)

let spin_ms ms =
  let t0 = Obs.Clock.monotonic_us () in
  while Obs.Clock.monotonic_us () -. t0 < ms *. 1e3 do
    ()
  done

let test_prof_self_vs_cumulative () =
  with_telemetry (fun () ->
    Obs.Prof.reset ();
    Fun.protect ~finally:Obs.Prof.reset @@ fun () ->
    for _ = 1 to 3 do
      Obs.Trace.with_span "outer" (fun () ->
        spin_ms 2.0;
        Obs.Trace.with_span "inner" (fun () -> spin_ms 4.0))
    done;
    let site name =
      match
        List.find_opt (fun s -> s.Obs.Prof.name = name) (Obs.Prof.sites ())
      with
      | Some s -> s
      | None -> Alcotest.failf "site %s missing" name
    in
    let outer = site "outer" and inner = site "inner" in
    Alcotest.(check int) "outer calls" 3 outer.Obs.Prof.calls;
    Alcotest.(check int) "inner calls" 3 inner.Obs.Prof.calls;
    (* outer cumulative covers the inner work, outer self excludes it *)
    Alcotest.(check bool) "outer cum >= self + inner" true
      (outer.Obs.Prof.cum_us
       >= outer.Obs.Prof.self_us +. inner.Obs.Prof.cum_us -. 1.0);
    check_in_range "outer self ~6ms" 4.5e3 60e3 outer.Obs.Prof.self_us;
    check_in_range "inner self ~12ms" 9e3 120e3 inner.Obs.Prof.self_us;
    (* folded stacks: root-first semicolon-joined paths with self in µs *)
    let folded = Obs.Prof.folded_string () in
    Alcotest.(check bool) "folded has nested path" true
      (List.exists
         (fun line ->
           String.length line > 11 && String.sub line 0 11 = "outer;inner")
         (String.split_on_char '\n' folded)))

(* --- OpenMetrics exposition ------------------------------------------- *)

let test_openmetrics_exposition () =
  with_telemetry (fun () ->
    Obs.Metrics.incr ~by:3.0 "sim.dcop.solves";
    Obs.Metrics.set "pool.size" 4.0;
    List.iter (Obs.Metrics.observe "sim.dcop.solve_us") [ 10.0; 20.0; 400.0 ];
    let text = Obs.Openmetrics.to_string () in
    let has sub =
      let n = String.length sub and l = String.length text in
      let rec go i = i + n <= l && (String.sub text i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check string) "sanitize" "losac_sim_dcop_solves"
      (Obs.Openmetrics.sanitize "sim.dcop.solves");
    Alcotest.(check bool) "counter family" true
      (has "# TYPE losac_sim_dcop_solves counter"
       && has "losac_sim_dcop_solves_total 3");
    Alcotest.(check bool) "gauge sample" true (has "\nlosac_pool_size 4");
    Alcotest.(check bool) "histogram family" true
      (has "# TYPE losac_sim_dcop_solve_us histogram"
       && has "losac_sim_dcop_solve_us_bucket{le=\"+Inf\"} 3"
       && has "losac_sim_dcop_solve_us_count 3"
       && has "losac_sim_dcop_solve_us_sum 430");
    Alcotest.(check bool) "terminated" true
      (String.length text >= 6
       && String.sub text (String.length text - 6) 6 = "# EOF\n");
    (* cumulative le counts must be monotone and end at the total *)
    match Obs.Metrics.merged_hist "sim.dcop.solve_us" with
    | None -> Alcotest.fail "merged hist missing"
    | Some h ->
      let last =
        Obs.Hist.fold_buckets h ~init:0 ~f:(fun prev ~upper:_ ~count ->
          if count < 0 then Alcotest.fail "negative bucket";
          prev + count)
      in
      Alcotest.(check int) "buckets cover all observations" 3 last)

(* --- flow integration ------------------------------------------------ *)

let test_flow_emits_telemetry () =
  with_telemetry (fun () ->
    let proc = Technology.Process.c06 in
    let kind = Device.Model.Level1 in
    let spec = Comdiac.Spec.paper_ota in
    let r = Core.Flow.run ~proc ~kind ~spec Core.Flow.Case3 in
    let layout_spans =
      List.filter
        (fun s -> s.Obs.Trace.name = "flow.layout_call")
        (Obs.Trace.spans ())
    in
    Alcotest.(check bool) "at least one span per layout call" true
      (List.length layout_spans >= r.Core.Flow.layout_calls
       && r.Core.Flow.layout_calls > 0);
    Alcotest.(check int) "trajectory matches telemetry series"
      (List.length r.Core.Flow.trajectory)
      (List.length (Obs.Metrics.values "flow.parasitic_delta"));
    Alcotest.(check bool) "Newton iterations counted" true
      (Obs.Metrics.counter "sim.dcop.newton_iters" > 0.0);
    Alcotest.(check bool) "sizing passes counted" true
      (Obs.Metrics.counter "flow.sizing_passes" > 0.0);
    match r.Core.Flow.trajectory with
    | [] -> Alcotest.fail "case 3 must iterate at least once"
    | deltas ->
      check_in_range "loop exits converged" 0.0 0.02
        (List.nth deltas (List.length deltas - 1)))

let suite =
  ( "obs",
    [
      case "span nesting and ordering" test_span_nesting;
      case "span survives exceptions" test_span_exception;
      case "span arguments" test_span_args;
      case "counter/gauge/histogram accumulation" test_counter_accumulation;
      case "disabled telemetry records nothing" test_disabled_noop;
      case "trace ring buffer caps retained spans" test_trace_ring_cap;
      case "profiler self vs cumulative time" test_prof_self_vs_cumulative;
      case "openmetrics exposition" test_openmetrics_exposition;
      case "json parser" test_json_parser;
      case "chrome trace round-trip" test_chrome_trace_round_trip;
      case "flow emits spans and trajectory" test_flow_emits_telemetry;
    ] )

open Helpers
module Flow = Core.Flow
module Bridge = Core.Layout_bridge
module FC = Comdiac.Folded_cascode
module Perf = Comdiac.Performance
module Plan = Cairo_layout.Plan
module Route = Cairo_layout.Route
module Slicing = Cairo_layout.Slicing
module P = Technology.Process

let proc = P.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

(* the four flows are the expensive part of the suite; run each once *)
let results =
  lazy
    (List.map
       (fun case -> (case, Flow.run ~proc ~kind ~spec case))
       Flow.all_cases)

let result case = List.assoc case (Lazy.force results)

(* --- bridge ------------------------------------------------------------- *)

let test_floorplan_structure () =
  let d = FC.size ~proc ~kind ~spec ~parasitics:Comdiac.Parasitics.none in
  let fp = Bridge.floorplan proc d Bridge.default_options in
  Alcotest.(check int) "six groups" 6 (List.length (Slicing.leaves fp));
  let names = List.map Plan.group_name (Slicing.leaves fp) in
  Alcotest.(check bool) "pair group present" true (List.mem "P1/P2" names);
  Alcotest.(check bool) "sink mirror present" true (List.mem "N5:N6" names)

let test_net_requests () =
  let d = FC.size ~proc ~kind ~spec ~parasitics:Comdiac.Parasitics.none in
  let reqs = Bridge.net_requests d in
  let get net = List.find (fun (r : Route.net_request) -> r.Route.net = net) reqs in
  Alcotest.(check bool) "out carries cascode current" true
    ((get "out").Route.current > 0.5 *. d.FC.i2);
  Alcotest.(check bool) "supply carries total current" true
    ((get "vdd").Route.current > d.FC.i1)

(* --- table 1 shape assertions -------------------------------------------- *)

let gbw r which =
  let p = match which with `S -> r.Flow.synthesized | `E -> r.Flow.extracted in
  p.Perf.gbw

let pm r which =
  let p = match which with `S -> r.Flow.synthesized | `E -> r.Flow.extracted in
  p.Perf.phase_margin

let test_case1_shape () =
  let r = result Flow.Case1 in
  Alcotest.(check int) "no layout feedback" 0 r.Flow.layout_calls;
  (* synthesized meets the spec, extraction falls short *)
  check_in_range "synth gbw on target" (0.97 *. spec.Comdiac.Spec.gbw)
    (1.03 *. spec.Comdiac.Spec.gbw) (gbw r `S);
  Alcotest.(check bool) "extracted gbw short by > 3%" true
    (gbw r `E < 0.97 *. gbw r `S);
  Alcotest.(check bool) "extracted pm degrades" true (pm r `E < pm r `S -. 2.0);
  (* DC characteristics unaffected by the missing capacitances *)
  check_close ~rel:0.02 "gain matches extraction"
    r.Flow.synthesized.Perf.dc_gain_db r.Flow.extracted.Perf.dc_gain_db;
  check_close ~rel:0.05 "power matches extraction"
    r.Flow.synthesized.Perf.power r.Flow.extracted.Perf.power

let test_case2_shape () =
  let r1 = result Flow.Case1 and r2 = result Flow.Case2 in
  (* over-estimated diffusion: the real layout folds, so extraction
     exceeds the synthesized view *)
  Alcotest.(check bool) "extracted gbw exceeds synthesized" true
    (gbw r2 `E > gbw r2 `S);
  Alcotest.(check bool) "extracted pm exceeds synthesized" true
    (pm r2 `E >= pm r2 `S -. 0.5);
  (* the price of over-design: less gain, lower rout, more power than
     case 1 *)
  Alcotest.(check bool) "case2 gain below case1" true
    (r2.Flow.synthesized.Perf.dc_gain_db < r1.Flow.synthesized.Perf.dc_gain_db);
  Alcotest.(check bool) "case2 rout below case1" true
    (r2.Flow.synthesized.Perf.output_resistance
     < r1.Flow.synthesized.Perf.output_resistance);
  Alcotest.(check bool) "case2 burns more power" true
    (r2.Flow.synthesized.Perf.power > r1.Flow.synthesized.Perf.power)

let test_case3_shape () =
  let r = result Flow.Case3 in
  Alcotest.(check bool) "layout loop ran" true (r.Flow.layout_calls >= 2);
  (* close, but the neglected routing still costs a little *)
  Alcotest.(check bool) "small shortfall" true
    (gbw r `E < gbw r `S && gbw r `E > 0.93 *. gbw r `S)

let test_case4_shape () =
  let r = result Flow.Case4 in
  check_in_range "layout calls about three" 2.0 6.0
    (float_of_int r.Flow.layout_calls);
  (* the headline result: synthesized matches extracted and meets spec *)
  check_close ~rel:0.02 "gbw synth = extracted" (gbw r `S) (gbw r `E);
  check_in_range "extracted gbw meets spec" (0.97 *. spec.Comdiac.Spec.gbw)
    (1.05 *. spec.Comdiac.Spec.gbw) (gbw r `E);
  Alcotest.(check bool) "extracted pm meets spec" true
    (pm r `E >= spec.Comdiac.Spec.phase_margin -. 1.0);
  check_close ~rel:0.03 "pm synth = extracted" (pm r `S) (pm r `E);
  check_close ~rel:0.03 "gain synth = extracted"
    r.Flow.synthesized.Perf.dc_gain_db r.Flow.extracted.Perf.dc_gain_db

let test_case_ordering () =
  (* extracted GBW: case4 closest to target, case1 worst *)
  let err case =
    Float.abs (gbw (result case) `E -. spec.Comdiac.Spec.gbw)
  in
  Alcotest.(check bool) "case4 beats case1" true (err Flow.Case4 < err Flow.Case1);
  Alcotest.(check bool) "case3 beats case1" true (err Flow.Case3 < err Flow.Case1)

(* --- extracted view --------------------------------------------------------- *)

let test_extracted_amp_details () =
  let r = result Flow.Case4 in
  let amp = Core.Flow.extracted_amp proc r.Flow.design r.Flow.report in
  (* devices folded and snapped to the lambda grid per finger *)
  List.iter
    (fun dev ->
      let nf = dev.Device.Mos.style.Device.Folding.nf in
      Alcotest.(check bool) (dev.Device.Mos.name ^ " folded") true (nf >= 2);
      let wf = dev.Device.Mos.w /. float_of_int nf in
      let lambda = proc.P.lambda in
      let snapped = Float.rem (wf /. lambda) 1.0 in
      Alcotest.(check bool)
        (dev.Device.Mos.name ^ " finger on grid")
        true
        (snapped < 1e-6 || snapped > 1.0 -. 1e-6))
    (Comdiac.Amp.mos_devices amp);
  (* coupling capacitors present *)
  let couplings =
    List.filter
      (function
        | Netlist.Element.Capacitor { name; _ } ->
          String.length name >= 3 && String.sub name 0 3 = "cc_"
        | Netlist.Element.Mos _ | Netlist.Element.Resistor _
        | Netlist.Element.Isource _ | Netlist.Element.Vsource _ -> false)
      amp.Comdiac.Amp.devices
  in
  Alcotest.(check bool) "coupling capacitors extracted" true (couplings <> [])

let test_layout_report_sanity () =
  let r = result Flow.Case4 in
  let report = r.Flow.report in
  Alcotest.(check bool) "generation emitted a cell" true
    (report.Plan.cell <> None);
  Alcotest.(check int) "all devices styled" 11
    (List.length report.Plan.device_styles);
  (* drains internal on the cascodes feeding the output (frequency
     optimisation, paper Fig. 5 discussion) *)
  List.iter
    (fun name ->
      let style = List.assoc name report.Plan.device_styles in
      Alcotest.(check bool) (name ^ " drain internal") true
        style.Device.Folding.drain_internal;
      Alcotest.(check bool) (name ^ " even folds") true
        (style.Device.Folding.nf mod 2 = 0))
    [ "N1C"; "N2C"; "P3C"; "P4C" ];
  (* the floating well of the input pair loads the tail *)
  match Plan.find_net report "tail" with
  | None -> Alcotest.fail "tail net missing from report"
  | Some s -> Alcotest.(check bool) "tail well cap" true (s.Plan.well_cap > 0.0)

(* --- sparse solver backend, end to end ----------------------------------- *)

let strip_elapsed r = { r with Flow.elapsed = 0.0 }

let test_sparse_flow_identity () =
  (* the full synthesis flow under the sparse natural-order backend must
     be structurally identical to the dense kernel run (only the
     wall-clock field may differ); caches are off so the second run
     cannot answer from memos computed by the first *)
  let run backend =
    Sim.Stamps.with_default_backend backend @@ fun () ->
    Cache.Config.with_enabled false @@ fun () ->
    Flow.run ~proc ~kind ~spec Flow.Case2
  in
  let k = run Sim.Stamps.Kernel in
  let s = run (Sim.Stamps.Sparse Linalg.Sparse.Natural) in
  Alcotest.(check bool) "sparse-natural flow == kernel flow" true
    (compare (strip_elapsed k) (strip_elapsed s) = 0)

(* --- traditional flow --------------------------------------------------------- *)

let test_traditional_flow () =
  let r = Core.Traditional.run ~proc ~kind ~spec () in
  Alcotest.(check bool) "converged" true r.Core.Traditional.converged;
  check_in_range "needed a few full layouts" 2.0 8.0
    (float_of_int r.Core.Traditional.full_layouts);
  Alcotest.(check bool) "every iteration simulated" true
    (r.Core.Traditional.extracted_simulations = r.Core.Traditional.full_layouts);
  (* the proposed flow reaches spec without any full-layout iteration
     loops: its only generation run is the final one *)
  let r4 = result Flow.Case4 in
  Alcotest.(check bool) "proposed flow avoids layout iterations" true
    (r4.Flow.layout_calls <= r.Core.Traditional.full_layouts + 1)

let suite =
  ( "core",
    [
      case "floorplan structure" test_floorplan_structure;
      case "net requests for EM" test_net_requests;
      case "case 1: missing parasitics" test_case1_shape;
      case "case 2: over-estimated diffusion" test_case2_shape;
      case "case 3: exact diffusion only" test_case3_shape;
      case "case 4: full knowledge (headline)" test_case4_shape;
      case "case error ordering" test_case_ordering;
      case "extracted netlist details" test_extracted_amp_details;
      case "layout report sanity" test_layout_report_sanity;
      case "sparse backend flow identity" test_sparse_flow_identity;
      case "traditional flow comparison" test_traditional_flow;
    ] )

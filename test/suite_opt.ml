open Helpers
module O = Opt.Objective
module S = Opt.Search

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

(* Structural equality on search results, NaN-safe (infeasible points
   carry NaN metrics, so [=] would report false negatives). *)
let same_outcome (a : S.result) (b : S.result) =
  Stdlib.compare (a.S.survivors, a.S.front, a.S.best)
    (b.S.survivors, b.S.front, b.S.best)
  = 0

(* --- candidate space ------------------------------------------------------- *)

let vec_gen =
  QCheck.Gen.(
    map
      (fun bits ->
        Array.init O.dims (fun d ->
          let t = float_of_int (List.nth bits d) /. 1000.0 in
          (* deliberately overshoot the bounds: snap must clamp *)
          O.lower.(d) +. ((O.upper.(d) -. O.lower.(d)) *. ((1.4 *. t) -. 0.2))))
      (list_repeat O.dims (int_bound 1000)))

let prop_snap_idempotent_and_bounded =
  QCheck.Test.make ~name:"snap clamps, lands on the lattice, idempotent"
    ~count:300 (QCheck.make vec_gen) (fun v ->
      let s = O.snap v in
      Array.length s = O.dims
      && Array.for_all2 (fun x (lo, hi) -> x >= lo && x <= hi) s
           (Array.map2 (fun a b -> (a, b)) O.lower O.upper)
      && Stdlib.compare (O.snap s) s = 0)

let prop_sample_vec_snapped =
  QCheck.Test.make ~name:"sampled candidates are already snapped" ~count:100
    QCheck.small_nat (fun seed ->
      let st = Par.Splitmix.create ~stream:3 seed in
      let v = O.sample_vec st in
      Stdlib.compare (O.snap v) v = 0)

(* --- objective determinism ------------------------------------------------- *)

let test_eval_cache_identity () =
  let obj = O.make ~proc ~kind ~spec () in
  let st = Par.Splitmix.create ~stream:0 7 in
  let vecs = List.init 10 (fun _ -> O.sample_vec st) in
  List.iter
    (fun (mode, vecs) ->
      let score vs = List.map (fun v -> O.eval obj ~mode v) vs in
      let off = Cache.Config.with_enabled false (fun () -> score vecs) in
      let cold = Cache.Config.with_enabled true (fun () -> score vecs) in
      let warm = Cache.Config.with_enabled true (fun () -> score vecs) in
      if Stdlib.compare off cold <> 0 || Stdlib.compare cold warm <> 0 then
        Alcotest.failf "tier %s: memo toggle changed evaluation results"
          (O.mode_tag mode))
    [ (O.Lut_plan, vecs); (O.Exact_plan, vecs);
      (* the simulator tier is expensive; three candidates suffice to
         cover the memo path *)
      (O.Simulated, List.filteri (fun i _ -> i < 3) vecs) ]

let test_tiers_agree_on_shape () =
  (* whatever the tier, a point reports the same snapped vector and a
     feasible point has finite metrics *)
  let obj = O.make ~proc ~kind ~spec () in
  let st = Par.Splitmix.create ~stream:1 11 in
  let v = O.sample_vec st in
  List.iter
    (fun mode ->
      let p = O.eval obj ~mode v in
      Alcotest.(check bool) "vector preserved" true
        (Stdlib.compare p.O.vec v = 0);
      if p.O.feasible then begin
        Alcotest.(check bool) "finite score" true (Float.is_finite p.O.score);
        Alcotest.(check bool) "finite power" true (Float.is_finite p.O.power)
      end
      else
        check_close "infeasible score is the sentinel" O.infeasible_score
          p.O.score)
    [ O.Lut_plan; O.Exact_plan; O.Simulated ]

(* --- search engine --------------------------------------------------------- *)

let run ?(jobs = 1) ?(cache = true) ?(starts = 2) ?(budget = 16) ?(seed = 5)
    ?(strategy = S.Nelder_mead) ?(lut = true) () =
  let ctx = Exec.Ctx.make ~jobs ~cache proc in
  S.run ~ctx ~starts ~budget ~strategy ~seed ~lut ~measure:false ~kind ~spec ()

let test_result_invariants () =
  let r = run ~starts:3 ~budget:24 () in
  Alcotest.(check int) "starts echoed" 3 r.S.starts;
  Alcotest.(check int) "seed echoed" 5 r.S.seed;
  Alcotest.(check bool) "coarse work done" true (r.S.evals_coarse >= 24);
  Alcotest.(check bool) "polish work done" true (r.S.evals_polish > 0);
  Alcotest.(check int) "one sim verification per survivor"
    (List.length r.S.survivors) r.S.evals_sim;
  (match r.S.survivors with
   | best :: _ ->
     Alcotest.(check bool) "best is the head survivor" true
       (Stdlib.compare best r.S.best = 0)
   | [] -> Alcotest.fail "no survivors");
  List.iter
    (fun p ->
      Alcotest.(check bool) "front points are survivors" true
        (List.exists (fun s -> Stdlib.compare s p = 0) r.S.survivors))
    r.S.front;
  Alcotest.(check bool) "positive throughput" true
    (S.points_per_second r > 0.0)

let prop_jobs_cache_identity =
  QCheck.Test.make
    ~name:"search bit-identical across jobs {1,2,8} x cache on/off" ~count:3
    QCheck.(make Gen.(triple (int_bound 999) bool bool))
    (fun (seed, nm, lut) ->
      let strategy = if nm then S.Nelder_mead else S.Anneal in
      let base = run ~jobs:1 ~cache:true ~seed ~strategy ~lut () in
      List.for_all
        (fun (jobs, cache) ->
          same_outcome base (run ~jobs ~cache ~seed ~strategy ~lut ()))
        [ (2, true); (8, false) ])

let test_lut_toggle_front_identity () =
  (* The LUT toggle only influences confirmed-set membership (see
     search.mli): front identity across it is empirical, so pin seeds
     the sweep verified rather than sampling — a random seed can
     legitimately diverge through a plan feasibility flip. *)
  List.iter
    (fun seed ->
      let a = run ~starts:4 ~budget:160 ~seed ~lut:true () in
      let b = run ~starts:4 ~budget:160 ~seed ~lut:false () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: exact re-verification erases the tier"
           seed)
        true
        (Stdlib.compare (a.S.front, a.S.best) (b.S.front, b.S.best) = 0))
    [ 2; 3 ]

let test_strategies_both_work () =
  let nm = run ~strategy:S.Nelder_mead () in
  let an = run ~strategy:S.Anneal () in
  Alcotest.(check bool) "nm found a feasible best" true nm.S.best.O.feasible;
  Alcotest.(check bool) "anneal found a feasible best" true
    an.S.best.O.feasible

let test_timeout_and_cancel () =
  (* expired deadline: Error Timeout through run_result, not an
     exception *)
  let dead = Exec.Ctx.with_timeout (Some 0.0) (Exec.Ctx.make proc) in
  (match
     S.run_result ~ctx:dead ~starts:2 ~budget:8 ~seed:1 ~measure:false ~kind
       ~spec ()
   with
   | Error (Sim.Sim_error.Timeout _) -> ()
   | Ok _ -> Alcotest.fail "expired deadline ran to completion"
   | Error e -> Alcotest.failf "wrong error: %s" (Sim.Sim_error.message e));
  (* pre-set cancellation token: same cooperative path *)
  let cancel = Atomic.make true in
  match
    S.run_result
      ~ctx:(Exec.Ctx.make ~cancel proc)
      ~starts:2 ~budget:8 ~seed:1 ~measure:false ~kind ~spec ()
  with
  | Error (Sim.Sim_error.Timeout _) -> ()
  | Ok _ -> Alcotest.fail "cancelled run completed"
  | Error e -> Alcotest.failf "wrong error: %s" (Sim.Sim_error.message e)

(* --- seed resolution ------------------------------------------------------- *)

let test_seed_resolution () =
  let with_env value f =
    let prev = Sys.getenv_opt "LOSAC_SEED" in
    Unix.putenv "LOSAC_SEED" value;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "LOSAC_SEED" (Option.value prev ~default:""))
      f
  in
  let ctx = Exec.Ctx.make ~seed:5 proc in
  Alcotest.(check int) "explicit override wins" 7
    (Exec.Ctx.seed ~override:7 (Some ctx));
  Alcotest.(check int) "ctx seed next" 5 (Exec.Ctx.seed (Some ctx));
  with_env "13" (fun () ->
    Alcotest.(check int) "env when the ctx has no seed" 13
      (Exec.Ctx.seed (Some (Exec.Ctx.make proc)));
    Alcotest.(check int) "ctx seed still beats the env" 5
      (Exec.Ctx.seed (Some ctx)));
  (* a search run records the seed it resolved *)
  let r = run ~seed:9 ~budget:8 () in
  Alcotest.(check int) "search echoes the resolved seed" 9 r.S.seed

(* --- LUT trust guard ------------------------------------------------------- *)

let test_trust_guard () =
  ignore (run ~budget:8 ());
  let t = Device.Lut.trust_check () in
  Alcotest.(check bool) "tables built" true (t.Device.Lut.tables > 0);
  Alcotest.(check bool) "cells visited" true (t.Device.Lut.cells_visited > 0);
  Alcotest.(check bool)
    (Printf.sprintf "interpolation trusted (max rel err %.2e)"
       t.Device.Lut.max_rel_err)
    true
    (t.Device.Lut.max_rel_err < 0.05)

let suite =
  ( "opt",
    [
      case "objective ignores the memo toggle" test_eval_cache_identity;
      case "tiers agree on point shape" test_tiers_agree_on_shape;
      case "result invariants" test_result_invariants;
      case "LUT toggle: pinned-seed front identity"
        test_lut_toggle_front_identity;
      case "both strategies produce feasible designs"
        test_strategies_both_work;
      case "timeout and cancellation surface as Error Timeout"
        test_timeout_and_cancel;
      case "seed resolution order" test_seed_resolution;
      case "LUT trust guard under the visited cells" test_trust_guard;
    ]
    @ qcheck_cases
        [
          prop_snap_idempotent_and_bounded; prop_sample_vec_snapped;
          prop_jobs_cache_identity;
        ] )

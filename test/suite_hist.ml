(* Log-bucketed histograms: the algebraic properties the per-domain
   sharding design rests on.

   Shards merged at snapshot time see observations in an arbitrary
   domain interleaving, so merge must be commutative and associative;
   quantile answers must stay within the advertised relative error of
   the exact order statistic whatever the data; and [record] must not
   allocate, or instrumenting pool-worker hot paths would create GC
   pressure proportional to the observation rate. *)

open Helpers

let of_values vs =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.record h) vs;
  h

(* positive in-range magnitudes: µs-scale durations up to hour-scale *)
let pos_values =
  QCheck.(list_of_size Gen.(1 -- 200) (map Float.abs (float_range 1e-3 1e9)))

(* exact order statistic with the same rank rule as Hist.quantile *)
let exact_quantile vs q =
  let a = Array.of_list vs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  a.(rank - 1)

let prop_quantile_rel_error =
  QCheck.Test.make ~count:200 ~name:"quantile within advertised rel error"
    pos_values (fun vs ->
      let h = of_values vs in
      List.for_all
        (fun q ->
          let est = Obs.Hist.quantile h q in
          let exact = exact_quantile vs q in
          (* the geometric-midpoint estimate is within rel_error of some
             value in the same bucket as the exact order statistic *)
          Float.abs (est -. exact)
          <= (Obs.Hist.rel_error *. 1.01 *. exact) +. 1e-12)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

let prop_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"merge commutes"
    QCheck.(pair pos_values pos_values)
    (fun (xs, ys) ->
      let ab = of_values xs in
      Obs.Hist.merge_into ~src:(of_values ys) ~dst:ab;
      let ba = of_values ys in
      Obs.Hist.merge_into ~src:(of_values xs) ~dst:ba;
      Obs.Hist.approx_equal ab ba)

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge associates"
    QCheck.(triple pos_values pos_values pos_values)
    (fun (xs, ys, zs) ->
      (* (a + b) + c *)
      let l = of_values xs in
      Obs.Hist.merge_into ~src:(of_values ys) ~dst:l;
      Obs.Hist.merge_into ~src:(of_values zs) ~dst:l;
      (* a + (b + c) *)
      let bc = of_values ys in
      Obs.Hist.merge_into ~src:(of_values zs) ~dst:bc;
      let r = of_values xs in
      Obs.Hist.merge_into ~src:bc ~dst:r;
      Obs.Hist.approx_equal l r)

let prop_merge_totals =
  QCheck.Test.make ~count:200 ~name:"merge preserves count/extrema"
    QCheck.(pair pos_values pos_values)
    (fun (xs, ys) ->
      let m = of_values xs in
      Obs.Hist.merge_into ~src:(of_values ys) ~dst:m;
      let whole = of_values (xs @ ys) in
      Obs.Hist.count m = List.length xs + List.length ys
      && Obs.Hist.approx_equal m whole)

let test_record_no_alloc () =
  let h = Obs.Hist.create () in
  (* Feed [record] from a float list: list cells hold already-boxed
     floats, so passing one across the call boundary allocates nothing
     and the measurement isolates [record]'s own allocation.  (A [for]
     loop over [float_of_int i] — or any flat [float array] — would box
     a fresh argument at every call site and charge the caller's 2
     words/call to the histogram.) *)
  let vs = List.init 1_000 (fun i -> float_of_int (i + 1)) in
  let record_one = Obs.Hist.record h in
  let record_all () = List.iter record_one vs in
  record_all ();
  (* warm up *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 10 do
    record_all ()
  done;
  let per_record = (Gc.minor_words () -. w0) /. 10_000.0 in
  if per_record > 0.01 then
    Alcotest.failf "record allocates %.3f words/call" per_record

let test_empty_and_clear () =
  let h = Obs.Hist.create () in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.Hist.quantile h 0.5));
  Alcotest.(check int) "empty count" 0 (Obs.Hist.count h);
  Obs.Hist.record h 3.0;
  Obs.Hist.record h (-1.0);
  (* <= 0 goes to the underflow bucket, answered by the exact minimum *)
  check_close "negative kept in min" (-1.0) (Obs.Hist.min_value h);
  Alcotest.(check int) "count includes underflow" 2 (Obs.Hist.count h);
  Obs.Hist.clear h;
  Alcotest.(check int) "cleared" 0 (Obs.Hist.count h)

let test_fold_buckets_cumulative () =
  let h = of_values [ 0.5; 1.0; 2.0; 1e6; 1e300 ] in
  let total =
    Obs.Hist.fold_buckets h ~init:0 ~f:(fun acc ~upper ~count ->
      if count <= 0 then Alcotest.fail "empty bucket visited";
      ignore upper;
      acc + count)
  in
  Alcotest.(check int) "bucket counts sum to n" (Obs.Hist.count h) total;
  (* upper bounds must strictly increase (legal OpenMetrics le series) *)
  let last = ref neg_infinity in
  Obs.Hist.fold_buckets h ~init:() ~f:(fun () ~upper ~count ->
    ignore count;
    if upper <= !last then Alcotest.fail "upper bounds not increasing";
    last := upper)

let suite =
  ( "hist",
    [
      case "record does not allocate" test_record_no_alloc;
      case "empty, underflow and clear" test_empty_and_clear;
      case "fold_buckets covers every observation" test_fold_buckets_cumulative;
    ]
    @ qcheck_cases
        [
          prop_quantile_rel_error;
          prop_merge_commutative;
          prop_merge_associative;
          prop_merge_totals;
        ] )

(* Perf-regression gate: the comparison semantics [bench --check] rides
   on.  Documents are built in-memory in the exact shape of the
   BENCH_*.json dumps, then perturbed one metric at a time. *)

open Helpers
module Gate = Bench_gate.Gate
module J = Obs.Json

let timing_doc ?(cores = 8.0) ?(seq_s = 10.0) ?(par_s = 2.0)
    ?(identical = true) () =
  J.Obj
    [
      ("schema", J.Str "losac.bench.timing/1");
      ("cores", J.Num cores);
      ("jobs", J.Num cores);
      ( "experiments",
        J.Arr
          [
            J.Obj
              [
                ("name", J.Str "monte carlo (n=200)");
                ("cores", J.Num cores);
                ("jobs", J.Num cores);
                ("seq_s", J.Num seq_s);
                ("par_s", J.Num par_s);
                ("speedup", J.Num (seq_s /. par_s));
                ("identical_bits", J.Bool identical);
              ];
          ] );
    ]

let check ~baseline ~fresh = Gate.compare_docs ~baseline ~fresh ()

let test_identical_passes () =
  (match check ~baseline:(timing_doc ()) ~fresh:(timing_doc ()) with
   | Gate.Pass -> ()
   | v -> Alcotest.failf "expected pass, got %a" Gate.pp_verdict v);
  let judged =
    Gate.compared_count ~baseline:(timing_doc ()) ~fresh:(timing_doc ())
  in
  Alcotest.(check bool) "comparison had teeth" true (judged >= 5)

let test_noise_within_band_passes () =
  (* 30% slower and a weaker speedup: inside the default bands *)
  let fresh = timing_doc ~seq_s:13.0 ~par_s:2.8 () in
  match check ~baseline:(timing_doc ()) ~fresh with
  | Gate.Pass -> ()
  | v -> Alcotest.failf "expected pass under noise, got %a" Gate.pp_verdict v

let test_time_cliff_fails () =
  let fresh = timing_doc ~par_s:4.0 () in
  (* par_s doubled (+100% > +60% budget) and speedup halved *)
  match check ~baseline:(timing_doc ()) ~fresh with
  | Gate.Regression msgs ->
    Alcotest.(check bool) "names the regressed metric" true
      (List.exists
         (fun m ->
           String.length m > 0
           && List.exists
                (fun sub ->
                  (* any of the affected keys must be spelled out *)
                  let n = String.length sub and l = String.length m in
                  let rec go i =
                    i + n <= l && (String.sub m i n = sub || go (i + 1))
                  in
                  go 0)
                [ "par_s"; "speedup" ])
         msgs)
  | v -> Alcotest.failf "expected regression, got %a" Gate.pp_verdict v

let test_identity_flag_flip_fails () =
  let fresh = timing_doc ~identical:false () in
  match check ~baseline:(timing_doc ()) ~fresh with
  | Gate.Regression _ -> ()
  | v -> Alcotest.failf "expected regression on flag flip, got %a"
           Gate.pp_verdict v

let test_core_mismatch_refused () =
  let fresh = timing_doc ~cores:1.0 () in
  (match check ~baseline:(timing_doc ~cores:8.0 ()) ~fresh with
   | Gate.Refusal _ -> ()
   | v -> Alcotest.failf "expected refusal, got %a" Gate.pp_verdict v);
  (* refusal even when every number inside would have regressed: the
     comparison is meaningless, not failed *)
  match
    check
      ~baseline:(timing_doc ~cores:8.0 ())
      ~fresh:(timing_doc ~cores:1.0 ~par_s:40.0 ~identical:false ())
  with
  | Gate.Refusal _ -> ()
  | v -> Alcotest.failf "expected refusal to outrank, got %a" Gate.pp_verdict v

let test_missing_metric_fails () =
  let fresh =
    J.Obj
      [
        ("schema", J.Str "losac.bench.timing/1");
        ("cores", J.Num 8.0);
        ("jobs", J.Num 8.0);
        ("experiments", J.Arr []);
      ]
  in
  match check ~baseline:(timing_doc ()) ~fresh with
  | Gate.Regression msgs ->
    Alcotest.(check bool) "missing experiment reported" true
      (List.exists
         (fun m ->
           let sub = "missing" and l = String.length m in
           let n = String.length sub in
           let rec go i = i + n <= l && (String.sub m i n = sub || go (i + 1)) in
           go 0)
         msgs)
  | v -> Alcotest.failf "expected regression, got %a" Gate.pp_verdict v

let test_extra_metric_and_reorder_ok () =
  (* fresh runs may add instrumentation and reorder named records *)
  let fresh =
    J.Obj
      [
        ("schema", J.Str "losac.bench.timing/1");
        ("cores", J.Num 8.0);
        ("jobs", J.Num 8.0);
        ("brand_new_section", J.Num 42.0);
        ( "experiments",
          J.Arr
            [
              J.Obj [ ("name", J.Str "added later"); ("seq_s", J.Num 1.0) ];
              J.Obj
                [
                  ("name", J.Str "monte carlo (n=200)");
                  ("cores", J.Num 8.0);
                  ("jobs", J.Num 8.0);
                  ("seq_s", J.Num 10.0);
                  ("par_s", J.Num 2.0);
                  ("speedup", J.Num 5.0);
                  ("identical_bits", J.Bool true);
                ];
            ] );
      ]
  in
  match check ~baseline:(timing_doc ()) ~fresh with
  | Gate.Pass -> ()
  | v -> Alcotest.failf "expected pass, got %a" Gate.pp_verdict v

let test_schema_change_refused () =
  let fresh =
    match timing_doc () with
    | J.Obj fields ->
      J.Obj
        (List.map
           (function
             | "schema", _ -> ("schema", J.Str "losac.bench.timing/2")
             | kv -> kv)
           fields)
    | _ -> assert false
  in
  match check ~baseline:(timing_doc ()) ~fresh with
  | Gate.Refusal _ -> ()
  | v -> Alcotest.failf "expected schema refusal, got %a" Gate.pp_verdict v

let test_missing_baseline_file_refused () =
  match
    Gate.check_file ~baseline_path:"/nonexistent/BENCH_timing.json"
      (timing_doc ())
  with
  | Gate.Refusal _ -> ()
  | v -> Alcotest.failf "expected refusal, got %a" Gate.pp_verdict v

let test_alloc_slack () =
  let doc words =
    J.Obj
      [
        ("schema", J.Str "losac.bench.kernels/1");
        ("kernel_words_per_solve", J.Num words);
      ]
  in
  (match check ~baseline:(doc 10.0) ~fresh:(doc 70.0) with
   | Gate.Pass -> ()  (* +60 words inside the 25% + 64 absolute slack *)
   | v -> Alcotest.failf "expected pass within slack, got %a" Gate.pp_verdict v);
  match check ~baseline:(doc 1000.0) ~fresh:(doc 2000.0) with
  | Gate.Regression _ -> ()
  | v -> Alcotest.failf "expected alloc regression, got %a" Gate.pp_verdict v

let test_overhead_band () =
  (* jobs=1 pool overhead is a near-zero fraction: judged by an absolute
     band (default ±5 points), never a relative one *)
  let doc frac =
    J.Obj
      [
        ("schema", J.Str "losac.bench.scaling/1");
        ("jobs1_pool_overhead_frac", J.Num frac);
      ]
  in
  (* 1% -> 4%: a 4x relative jump but inside the absolute band *)
  (match check ~baseline:(doc 0.01) ~fresh:(doc 0.04) with
   | Gate.Pass -> ()
   | v -> Alcotest.failf "expected pass within band, got %a" Gate.pp_verdict v);
  (* getting faster is never a regression *)
  (match check ~baseline:(doc 0.03) ~fresh:(doc (-0.02)) with
   | Gate.Pass -> ()
   | v -> Alcotest.failf "expected pass on improvement, got %a"
            Gate.pp_verdict v);
  (* a lucky negative baseline is floored at zero: +4% must still pass *)
  (match check ~baseline:(doc (-0.08)) ~fresh:(doc 0.04) with
   | Gate.Pass -> ()
   | v -> Alcotest.failf "expected pass over floored baseline, got %a"
            Gate.pp_verdict v);
  match check ~baseline:(doc 0.01) ~fresh:(doc 0.10) with
  | Gate.Regression msgs ->
    Alcotest.(check bool) "names the overhead metric" true (msgs <> [])
  | v -> Alcotest.failf "expected overhead regression, got %a"
           Gate.pp_verdict v

let suite =
  ( "gate",
    [
      case "identical docs pass" test_identical_passes;
      case "noise inside the band passes" test_noise_within_band_passes;
      case "time cliff fails" test_time_cliff_fails;
      case "identity flag flip fails" test_identity_flag_flip_fails;
      case "core-count mismatch is refused" test_core_mismatch_refused;
      case "missing metric fails" test_missing_metric_fails;
      case "extra metrics and reordering pass" test_extra_metric_and_reorder_ok;
      case "schema change is refused" test_schema_change_refused;
      case "missing baseline file is refused" test_missing_baseline_file_refused;
      case "allocation slack" test_alloc_slack;
      case "overhead absolute band" test_overhead_band;
    ] )

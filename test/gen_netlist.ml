(* Random connected netlists shared by the solver-backend property tests.

   A resistor spanning tree rooted at ground guarantees every node has a
   DC path to ground; on top of it a seeded mix of extra resistors,
   capacitors, current sources, grounded voltage sources and MOS devices
   exercises every stamp kind (including the structurally zero-diagonal
   voltage-source branch rows).  The same [(nodes, seed)] pair always
   builds the same circuit, so failures reproduce. *)

module Ckt = Netlist.Circuit
module El = Netlist.Element

let node i = Printf.sprintf "n%d" i

(* [make ~nodes ~seed] is a connected circuit over [nodes] named nodes
   plus ground, and a designated observation node for transfer-function
   style measurements. *)
let make ~nodes ~seed =
  assert (nodes >= 2);
  let st = Random.State.make [| 0x5EED; seed; nodes |] in
  let pick_node () = node (1 + Random.State.int st nodes) in
  let pick_or_gnd () =
    if Random.State.int st 5 = 0 then El.ground else pick_node ()
  in
  let c = ref (Ckt.create ~title:(Printf.sprintf "gen-%d-%d" nodes seed)) in
  (* spanning tree: node i hangs off a uniformly chosen earlier node *)
  for i = 1 to nodes do
    let parent =
      if i = 1 then El.ground else node (1 + Random.State.int st (i - 1))
    in
    c :=
      Ckt.add_resistor !c
        ~name:(Printf.sprintf "rt%d" i)
        ~p:(node i) ~n:parent
        ~r:(100.0 +. Random.State.float st 10_000.0)
  done;
  let extra = Random.State.int st (1 + (nodes / 2)) in
  for k = 1 to extra do
    let p = pick_node () and n = pick_or_gnd () in
    if p <> n then
      c :=
        Ckt.add_resistor !c
          ~name:(Printf.sprintf "rx%d" k)
          ~p ~n
          ~r:(100.0 +. Random.State.float st 50_000.0)
  done;
  let ncaps = Random.State.int st (1 + (nodes / 2)) in
  for k = 1 to ncaps do
    let p = pick_node () and n = pick_or_gnd () in
    if p <> n then
      c :=
        Ckt.add_capacitor !c
          ~name:(Printf.sprintf "c%d" k)
          ~p ~n
          ~c:(1e-13 +. Random.State.float st 1e-11)
  done;
  let nis = Random.State.int st 3 in
  for k = 1 to nis do
    let p = pick_node () and n = pick_or_gnd () in
    if p <> n then
      c :=
        Ckt.add_isource !c
          ~name:(Printf.sprintf "i%d" k)
          ~p ~n
          (El.dc_source (Random.State.float st 2e-4 -. 1e-4))
  done;
  (* grounded voltage sources on distinct nodes, the first carrying the
     AC drive *)
  c :=
    Ckt.add_vsource !c ~name:"v1" ~p:(node 1) ~n:El.ground
      (El.ac_source ~dc:(0.5 +. Random.State.float st 2.0) 1.0);
  if nodes > 2 && Random.State.bool st then
    c :=
      Ckt.add_vsource !c ~name:"v2" ~p:(node 2) ~n:El.ground
        (El.dc_source (Random.State.float st 3.0));
  (* MOS devices: gate and drain anywhere, bulk tied to source *)
  let nmos = Random.State.int st (1 + (nodes / 3)) in
  for k = 1 to nmos do
    let mtype =
      if Random.State.bool st then Technology.Electrical.Nmos
      else Technology.Electrical.Pmos
    in
    let dev =
      Device.Mos.make
        ~name:(Printf.sprintf "m%d" k)
        ~mtype
        ~w:(2e-6 +. Random.State.float st 20e-6)
        ~l:(1e-6 +. Random.State.float st 2e-6)
        ()
    in
    let d = pick_node () and g = pick_node () and s = pick_or_gnd () in
    c := Ckt.add_mos !c ~dev ~d ~g ~s ~b:s
  done;
  (!c, node (1 + Random.State.int st nodes))

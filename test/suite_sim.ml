open Helpers
module Ckt = Netlist.Circuit
module El = Netlist.Element
module M = Device.Model
module P = Technology.Process
module E = Technology.Electrical

let solve = Sim.Dcop.solve ~proc:P.c06 ~kind:M.Level1

(* --- DC --------------------------------------------------------------- *)

let test_divider () =
  let c =
    Ckt.create ~title:"divider"
    |> fun c -> Ckt.add_vsource c ~name:"dd" ~p:"in" ~n:"0" (El.dc_source 3.0)
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"in" ~n:"mid" ~r:1e3
    |> fun c -> Ckt.add_resistor c ~name:"2" ~p:"mid" ~n:"0" ~r:2e3
  in
  let op = solve c in
  check_close ~rel:1e-6 "divider voltage" 2.0 (Sim.Dcop.voltage op "mid");
  check_close ~rel:1e-6 "source current" 1e-3 (Sim.Dcop.supply_current op "dd")

let test_current_source () =
  let c =
    Ckt.create ~title:"ir"
    |> fun c -> Ckt.add_isource c ~name:"b" ~p:"0" ~n:"x" (El.dc_source 1e-3)
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"x" ~n:"0" ~r:4.7e3
  in
  let op = solve c in
  check_close ~rel:1e-6 "IR drop" 4.7 (Sim.Dcop.voltage op "x")

let test_diode_connected_nmos () =
  let dev = Device.Mos.make ~name:"1" ~mtype:E.Nmos ~w:20e-6 ~l:1e-6 () in
  let c =
    Ckt.create ~title:"diode"
    |> fun c -> Ckt.add_isource c ~name:"b" ~p:"0" ~n:"d" (El.dc_source 50e-6)
    |> fun c -> Ckt.add_mos c ~dev ~d:"d" ~g:"d" ~s:"0" ~b:"0"
  in
  let op = solve c in
  let v = Sim.Dcop.voltage op "d" in
  check_in_range "diode-connected vgs" 0.8 1.4 v;
  let dop = Sim.Dcop.device_op op "1" in
  check_close ~rel:1e-6 "device carries bias current" 50e-6
    dop.Device.Op.eval.M.ids

let test_nmos_mirror () =
  (* 1:2 mirror by width ratio *)
  let m1 = Device.Mos.make ~name:"1" ~mtype:E.Nmos ~w:10e-6 ~l:2e-6 () in
  let m2 = Device.Mos.make ~name:"2" ~mtype:E.Nmos ~w:20e-6 ~l:2e-6 () in
  let c =
    Ckt.create ~title:"mirror"
    |> fun c -> Ckt.add_isource c ~name:"b" ~p:"0" ~n:"ref" (El.dc_source 20e-6)
    |> fun c -> Ckt.add_mos c ~dev:m1 ~d:"ref" ~g:"ref" ~s:"0" ~b:"0"
    |> fun c -> Ckt.add_mos c ~dev:m2 ~d:"out" ~g:"ref" ~s:"0" ~b:"0"
    |> fun c -> Ckt.add_vsource c ~name:"o" ~p:"out" ~n:"0" (El.dc_source 1.5)
  in
  let op = solve c in
  (* the mirror sinks ~40uA (slightly more due to channel-length modulation
     at vds = 1.5 V) *)
  let iout = Sim.Dcop.supply_current op "o" in
  check_in_range "mirrored current" 38e-6 48e-6 iout

let test_pmos_follower () =
  let dev = Device.Mos.make ~name:"p" ~mtype:E.Pmos ~w:40e-6 ~l:1e-6 () in
  let c =
    Ckt.create ~title:"pmos bias"
    |> fun c -> Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3)
    |> fun c -> Ckt.add_vsource c ~name:"g" ~p:"gate" ~n:"0" (El.dc_source 1.8)
    |> fun c -> Ckt.add_mos c ~dev ~d:"out" ~g:"gate" ~s:"vdd" ~b:"vdd"
    |> fun c -> Ckt.add_resistor c ~name:"l" ~p:"out" ~n:"0" ~r:20e3
  in
  let op = solve c in
  let v = Sim.Dcop.voltage op "out" in
  check_in_range "pmos pulls output up" 0.3 3.2 v;
  let dop = Sim.Dcop.device_op op "p" in
  Alcotest.(check bool) "pmos in forward bias" true
    (dop.Device.Op.eval.M.ids > 1e-6)

(* --- AC --------------------------------------------------------------- *)

let rc_lowpass r cap =
  Ckt.create ~title:"rc"
  |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"in" ~n:"0" (El.ac_source ~dc:0.0 1.0)
  |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"in" ~n:"out" ~r
  |> fun c -> Ckt.add_capacitor c ~name:"1" ~p:"out" ~n:"0" ~c:cap

let test_rc_transfer () =
  let r = 1e3 and cap = 1e-9 in
  let op = solve (rc_lowpass r cap) in
  let net = Sim.Acs.prepare op in
  let fc = 1.0 /. (2.0 *. Float.pi *. r *. cap) in
  let mag = Sim.Measure.magnitude net ~out:"out" fc in
  check_close ~rel:1e-6 "-3dB at fc" (1.0 /. sqrt 2.0) mag;
  let ph = Sim.Measure.phase_deg net ~out:"out" fc in
  check_close ~rel:1e-4 "-45 deg at fc" (-45.0) ph;
  match Sim.Measure.bandwidth_3db net ~out:"out" with
  | None -> Alcotest.fail "no 3dB point"
  | Some f -> check_close ~rel:1e-3 "bandwidth measure" fc f

let test_common_source_gain () =
  let dev = Device.Mos.make ~name:"1" ~mtype:E.Nmos ~w:50e-6 ~l:1e-6 () in
  let rl = 50e3 in
  let c =
    Ckt.create ~title:"cs amp"
    |> fun c -> Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3)
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"g" ~n:"0" (El.ac_source ~dc:1.0 1.0)
    |> fun c -> Ckt.add_resistor c ~name:"l" ~p:"vdd" ~n:"d" ~r:rl
    |> fun c -> Ckt.add_mos c ~dev ~d:"d" ~g:"g" ~s:"0" ~b:"0"
  in
  let op = solve c in
  let dop = Sim.Dcop.device_op op "1" in
  let gm = dop.Device.Op.eval.M.gm and gds = dop.Device.Op.eval.M.gds in
  let expect = gm /. ((1.0 /. rl) +. gds) in
  let net = Sim.Acs.prepare op in
  let gain = Sim.Measure.dc_gain net ~out:"d" in
  check_close ~rel:1e-3 "cs gain = gm*(RL || ro)" expect gain

let test_output_resistance_measure () =
  let c =
    Ckt.create ~title:"rout"
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"out" ~n:"0" ~r:12.34e3
  in
  let op = solve c in
  let net = Sim.Acs.prepare op in
  check_close ~rel:1e-6 "rout of plain resistor" 12.34e3
    (Sim.Measure.output_resistance net ~out:"out")

let test_unity_gain_freq () =
  (* single-pole common-source stage: with dc gain >> 1 the unity-gain
     frequency is gm / (2 pi C_total) independent of the load resistor *)
  let r = 30e3 and cap = 10e-12 in
  let dev = Device.Mos.make ~name:"1" ~mtype:E.Nmos ~w:20e-6 ~l:1e-6 () in
  let c =
    Ckt.create ~title:"onepole"
    |> fun c -> Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3)
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"g" ~n:"0" (El.ac_source ~dc:1.0 1.0)
    |> fun c -> Ckt.add_mos c ~dev ~d:"d" ~g:"g" ~s:"0" ~b:"0"
    |> fun c -> Ckt.add_resistor c ~name:"l" ~p:"vdd" ~n:"d" ~r
    |> fun c -> Ckt.add_capacitor c ~name:"l" ~p:"d" ~n:"0" ~c:cap
  in
  let op = solve c in
  let dop = Sim.Dcop.device_op op "1" in
  Alcotest.(check string) "stage biased in saturation" "saturation"
    (M.region_to_string dop.Device.Op.eval.M.region);
  let gm = dop.Device.Op.eval.M.gm in
  let net = Sim.Acs.prepare op in
  Alcotest.(check bool) "dc gain above unity" true
    (Sim.Measure.dc_gain net ~out:"d" > 3.0);
  match Sim.Measure.unity_gain_freq net ~out:"d" with
  | None -> Alcotest.fail "no unity crossing"
  | Some fu ->
    let ctotal = cap +. dop.Device.Op.caps.Device.Caps.cgd
                 +. dop.Device.Op.caps.Device.Caps.cdb in
    let expect = gm /. (2.0 *. Float.pi *. ctotal) in
    check_close ~rel:0.08 "fu ~ gm/2piC" expect fu

(* --- noise ------------------------------------------------------------ *)

let test_resistor_noise () =
  (* output noise of a grounded parallel RC at low frequency equals 4kTR *)
  let r = 100e3 in
  let c =
    Ckt.create ~title:"rnoise"
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"out" ~n:"0" ~r
  in
  let op = solve c in
  let net = Sim.Acs.prepare op in
  let psd, contribs = Sim.Noise.output_psd op net ~out:"out" ~freq:1e3 in
  let expect = 4.0 *. Phys.Const.boltzmann *. Phys.Const.room_temperature *. r in
  check_close ~rel:1e-6 "4kTR" expect psd;
  Alcotest.(check int) "one contributor" 1 (List.length contribs)

let test_mos_noise_input_referred () =
  let dev = Device.Mos.make ~name:"1" ~mtype:E.Nmos ~w:100e-6 ~l:1e-6 () in
  let c =
    Ckt.create ~title:"mosnoise"
    |> fun c -> Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3)
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"g" ~n:"0" (El.ac_source ~dc:1.0 1.0)
    |> fun c -> Ckt.add_mos c ~dev ~d:"d" ~g:"g" ~s:"0" ~b:"0"
    |> fun c -> Ckt.add_resistor c ~name:"l" ~p:"vdd" ~n:"d" ~r:5e3
  in
  let op = solve c in
  let net = Sim.Acs.prepare op in
  let freq = 10e6 in
  let gain = Sim.Acs.transfer net ~freq ~out:"d" in
  let svin = Sim.Noise.input_referred_psd op net ~out:"d" ~gain ~freq in
  (* input-referred thermal of the device alone: 8kT/(3gm) *)
  let dop = Sim.Dcop.device_op op "1" in
  let gm = dop.Device.Op.eval.M.gm in
  let dev_only = 8.0 *. Phys.Const.boltzmann *. Phys.Const.room_temperature
                 /. (3.0 *. gm) in
  Alcotest.(check bool) "input noise at least device thermal" true
    (svin >= dev_only *. 0.99);
  Alcotest.(check bool) "within 3x (resistor adds)" true (svin < dev_only *. 3.0)

(* --- transient --------------------------------------------------------- *)

let test_rc_step () =
  let r = 1e3 and cap = 1e-9 in
  let tau = r *. cap in
  let step t = if t <= 0.0 then 0.0 else 1.0 in
  let c =
    Ckt.create ~title:"rc step"
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"in" ~n:"0" (El.wave_source step)
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"in" ~n:"out" ~r
    |> fun c -> Ckt.add_capacitor c ~name:"1" ~p:"out" ~n:"0" ~c:cap
  in
  let res =
    Sim.Tran.run ~proc:P.c06 ~kind:M.Level1 ~tstop:(5.0 *. tau)
      ~dt:(tau /. 400.0) c
  in
  let v_tau = Sim.Tran.value_at res "out" tau in
  check_close ~rel:0.01 "1 - 1/e at tau" (1.0 -. exp (-1.0)) v_tau;
  let v_end = Sim.Tran.value_at res "out" (5.0 *. tau) in
  check_in_range "settled" 0.99 1.0 v_end

let test_cap_ramp_slope () =
  (* a current step into a capacitor ramps it at dv/dt = I/C; the bleed
     resistor is large enough that the ramp stays linear over the run *)
  let i = 1e-6 and cap = 1e-12 in
  let istep t = if t <= 0.0 then 0.0 else i in
  let c =
    Ckt.create ~title:"ramp"
    |> fun c -> Ckt.add_isource c ~name:"b" ~p:"0" ~n:"x" (El.wave_source istep)
    |> fun c -> Ckt.add_capacitor c ~name:"1" ~p:"x" ~n:"0" ~c:cap
    |> fun c -> Ckt.add_resistor c ~name:"big" ~p:"x" ~n:"0" ~r:1e9
  in
  let res = Sim.Tran.run ~proc:P.c06 ~kind:M.Level1 ~tstop:1e-6 ~dt:1e-9 c in
  let rising, _ = Sim.Tran.max_slope res "x" in
  check_close ~rel:0.05 "slew I/C" (i /. cap) rising

let test_settling_time () =
  let r = 1e3 and cap = 1e-9 in
  let step t = if t <= 0.0 then 0.0 else 1.0 in
  let c =
    Ckt.create ~title:"rc settle"
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"in" ~n:"0" (El.wave_source step)
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"in" ~n:"out" ~r
    |> fun c -> Ckt.add_capacitor c ~name:"1" ~p:"out" ~n:"0" ~c:cap
  in
  let res = Sim.Tran.run ~proc:P.c06 ~kind:M.Level1 ~tstop:10e-6 ~dt:5e-9 c in
  match Sim.Tran.settling_time res "out" ~target:1.0 ~tol:0.01 with
  | None -> Alcotest.fail "did not settle"
  | Some t ->
    (* 1% settling of a first-order system: ~4.6 tau *)
    check_in_range "settling near 4.6 tau" (3.5e-6) (5.5e-6) t

let prop_divider_matches_analytic =
  QCheck.Test.make ~name:"random resistive ladders match analytic solution"
    ~count:60
    QCheck.(pair (float_range 100.0 1e6) (float_range 100.0 1e6))
    (fun (r1, r2) ->
      let c =
        Ckt.create ~title:"prop divider"
        |> fun c -> Ckt.add_vsource c ~name:"s" ~p:"a" ~n:"0" (El.dc_source 1.0)
        |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"a" ~n:"b" ~r:r1
        |> fun c -> Ckt.add_resistor c ~name:"2" ~p:"b" ~n:"0" ~r:r2
      in
      let op = solve c in
      let v = Sim.Dcop.voltage op "b" in
      Float.abs (v -. (r2 /. (r1 +. r2))) < 1e-6)

(* --- edge cases ---------------------------------------------------------- *)

let test_floating_node_gmin () =
  (* a node connected only through a capacitor floats at DC: gmin keeps the
     system regular and parks it at ground *)
  let c =
    Ckt.create ~title:"floating"
    |> fun c -> Ckt.add_vsource c ~name:"s" ~p:"a" ~n:"0" (El.dc_source 1.0)
    |> fun c -> Ckt.add_capacitor c ~name:"1" ~p:"a" ~n:"f" ~c:1e-12
    |> fun c -> Ckt.add_capacitor c ~name:"2" ~p:"f" ~n:"0" ~c:1e-12
  in
  let op = solve c in
  check_in_range "floating node parked" (-1e-3) 1.0 (Sim.Dcop.voltage op "f")

let test_source_only_circuit () =
  let c =
    Ckt.create ~title:"src"
    |> fun c -> Ckt.add_vsource c ~name:"s" ~p:"a" ~n:"0" (El.dc_source 2.5)
  in
  let op = solve c in
  check_close ~rel:1e-9 "source node" 2.5 (Sim.Dcop.voltage op "a");
  check_close ~abs_tol:1e-9 "no current" 0.0 (Sim.Dcop.supply_current op "s")

let test_two_stage_rc_transfer () =
  (* two cascaded RC sections with analytic transfer:
     H(s) = 1 / (1 + s(R1C1 + R2C2 + R1C2) + s^2 R1C1R2C2) *)
  let r1 = 1e3 and c1 = 1e-9 and r2 = 10e3 and c2 = 0.1e-9 in
  let c =
    Ckt.create ~title:"rc2"
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"in" ~n:"0" (El.ac_source 1.0)
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"in" ~n:"m" ~r:r1
    |> fun c -> Ckt.add_capacitor c ~name:"1" ~p:"m" ~n:"0" ~c:c1
    |> fun c -> Ckt.add_resistor c ~name:"2" ~p:"m" ~n:"out" ~r:r2
    |> fun c -> Ckt.add_capacitor c ~name:"2" ~p:"out" ~n:"0" ~c:c2
  in
  let op = solve c in
  let net = Sim.Acs.prepare op in
  let f = 300e3 in
  let w = 2.0 *. Float.pi *. f in
  let a1 = (r1 *. c1) +. (r2 *. c2) +. (r1 *. c2) in
  let a2 = r1 *. c1 *. r2 *. c2 in
  let expect =
    Complex.div Complex.one
      { Complex.re = 1.0 -. (w *. w *. a2); im = w *. a1 }
  in
  let h = Sim.Acs.transfer net ~freq:f ~out:"out" in
  check_close ~rel:1e-6 "two-pole magnitude" (Complex.norm expect) (Complex.norm h);
  check_close ~rel:1e-6 "two-pole phase" (Complex.arg expect) (Complex.arg h)

let test_dc_without_guess_converges () =
  (* the folded cascode biases even from an all-zero initial guess via the
     continuation strategies *)
  let d =
    Comdiac.Folded_cascode.size ~proc:P.c06 ~kind:M.Bsim_lite
      ~spec:Comdiac.Spec.paper_ota ~parasitics:Comdiac.Parasitics.none
  in
  let spec = Comdiac.Spec.paper_ota in
  let vcm = Comdiac.Spec.input_common_mode spec in
  let c = Ckt.create ~title:"cold start" in
  let c = Comdiac.Amp.add_to d.Comdiac.Folded_cascode.amp c in
  let c = Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3) in
  let c = Ckt.add_vsource c ~name:"a" ~p:"inp" ~n:"0" (El.dc_source vcm) in
  let c = Ckt.add_vsource c ~name:"b" ~p:"inn" ~n:"0" (El.dc_source vcm) in
  let op = Sim.Dcop.solve ~proc:P.c06 ~kind:M.Bsim_lite c in
  check_in_range "output inside the rails" 0.0 3.3 (Sim.Dcop.voltage op "out")

(* --- backend identity --------------------------------------------------
   The unboxed workspace kernels (the default) and the boxed functor
   reference must produce bit-for-bit identical results on real
   circuits. *)

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let cascode_testbench () =
  let d =
    Comdiac.Folded_cascode.size ~proc:P.c06 ~kind:M.Bsim_lite
      ~spec:Comdiac.Spec.paper_ota ~parasitics:Comdiac.Parasitics.none
  in
  let vcm = Comdiac.Spec.input_common_mode Comdiac.Spec.paper_ota in
  let c = Ckt.create ~title:"backend identity" in
  let c = Comdiac.Amp.add_to d.Comdiac.Folded_cascode.amp c in
  let c = Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3) in
  let c = Ckt.add_vsource c ~name:"a" ~p:"inp" ~n:"0" (El.dc_source vcm) in
  let c = Ckt.add_vsource c ~name:"b" ~p:"inn" ~n:"0" (El.dc_source vcm) in
  c

let test_backend_dc_bit_identical () =
  let c = cascode_testbench () in
  let k =
    Sim.Dcop.solve ~backend:Sim.Stamps.Kernel ~proc:P.c06 ~kind:M.Bsim_lite c
  in
  let r =
    Sim.Dcop.solve ~backend:Sim.Stamps.Reference ~proc:P.c06 ~kind:M.Bsim_lite c
  in
  Alcotest.(check int) "same Newton iteration count"
    (Sim.Dcop.iterations r) (Sim.Dcop.iterations k);
  Array.iter
    (fun name ->
      Alcotest.(check bool) ("V(" ^ name ^ ") bit-identical") true
        (bits_eq (Sim.Dcop.voltage k name) (Sim.Dcop.voltage r name)))
    (Sim.Indexing.node_names (Sim.Dcop.indexing k))

let test_backend_ac_bit_identical () =
  let dev = Device.Mos.make ~name:"1" ~mtype:E.Nmos ~w:50e-6 ~l:1e-6 () in
  let c =
    Ckt.create ~title:"ac identity"
    |> fun c -> Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3)
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"g" ~n:"0" (El.ac_source ~dc:1.0 1.0)
    |> fun c -> Ckt.add_resistor c ~name:"l" ~p:"vdd" ~n:"d" ~r:50e3
    |> fun c -> Ckt.add_capacitor c ~name:"c" ~p:"d" ~n:"0" ~c:1e-12
    |> fun c -> Ckt.add_mos c ~dev ~d:"d" ~g:"g" ~s:"0" ~b:"0"
  in
  let op = solve c in
  let net = Sim.Acs.prepare op in
  List.iter
    (fun freq ->
      let hk = Sim.Acs.transfer ~backend:Sim.Stamps.Kernel net ~freq ~out:"d" in
      let hr =
        Sim.Acs.transfer ~backend:Sim.Stamps.Reference net ~freq ~out:"d"
      in
      Alcotest.(check bool)
        (Printf.sprintf "H(%.0e) bit-identical" freq)
        true
        (bits_eq hk.Complex.re hr.Complex.re
         && bits_eq hk.Complex.im hr.Complex.im))
    [ 1.0; 1e3; 1e6; 1e9 ];
  (* noise inner loop: the in-workspace |V(out)|^2 equals the reference
     backend's, and the phasor-vector formulation of the same quantity *)
  let fk = Sim.Acs.factor ~backend:Sim.Stamps.Kernel net ~freq:1e6 in
  let fr = Sim.Acs.factor ~backend:Sim.Stamps.Reference net ~freq:1e6 in
  let gk = Sim.Acs.injection_gain2 fk ~p:"d" ~n:"0" ~out:"d" in
  let gr = Sim.Acs.injection_gain2 fr ~p:"d" ~n:"0" ~out:"d" in
  Alcotest.(check bool) "injection gain bit-identical" true (bits_eq gk gr);
  let via_vector =
    Complex.norm2 (Sim.Acs.voltage net (Sim.Acs.solve_injection fk ~p:"d" ~n:"0") "d")
  in
  Alcotest.(check bool) "gain2 equals norm2 of phasor" true
    (bits_eq gk via_vector)

let test_backend_ac_interleaved_factors () =
  (* two live kernel factorisations share the domain's workspace: each
     solve transparently re-factors when the other clobbered it, and the
     results stay bit-identical to the reference backend *)
  let r = 1e3 and cap = 1e-9 in
  let op = solve (rc_lowpass r cap) in
  let net = Sim.Acs.prepare op in
  let f1 = Sim.Acs.factor ~backend:Sim.Stamps.Kernel net ~freq:1e4 in
  let f2 = Sim.Acs.factor ~backend:Sim.Stamps.Kernel net ~freq:1e7 in
  let h1 = Sim.Acs.voltage net (Sim.Acs.solve_sources f1) "out" in
  let h2 = Sim.Acs.voltage net (Sim.Acs.solve_sources f2) "out" in
  let h1r = Sim.Acs.transfer ~backend:Sim.Stamps.Reference net ~freq:1e4 ~out:"out" in
  let h2r = Sim.Acs.transfer ~backend:Sim.Stamps.Reference net ~freq:1e7 ~out:"out" in
  Alcotest.(check bool) "stale handle refactors identically" true
    (bits_eq h1.Complex.re h1r.Complex.re && bits_eq h1.Complex.im h1r.Complex.im);
  Alcotest.(check bool) "second handle intact" true
    (bits_eq h2.Complex.re h2r.Complex.re && bits_eq h2.Complex.im h2r.Complex.im)

let test_backend_tran_bit_identical () =
  let r = 1e3 and cap = 1e-9 in
  let tau = r *. cap in
  let step t = if t <= 0.0 then 0.0 else 1.0 in
  let c =
    Ckt.create ~title:"tran identity"
    |> fun c -> Ckt.add_vsource c ~name:"in" ~p:"in" ~n:"0" (El.wave_source step)
    |> fun c -> Ckt.add_resistor c ~name:"1" ~p:"in" ~n:"out" ~r
    |> fun c -> Ckt.add_capacitor c ~name:"1" ~p:"out" ~n:"0" ~c:cap
  in
  let run backend =
    Sim.Tran.run ~backend ~proc:P.c06 ~kind:M.Level1 ~tstop:(5.0 *. tau)
      ~dt:(tau /. 50.0) c
  in
  let wk = Sim.Tran.waveform (run Sim.Stamps.Kernel) "out" in
  let wr = Sim.Tran.waveform (run Sim.Stamps.Reference) "out" in
  Alcotest.(check bool) "every time point bit-identical" true
    (Array.for_all2 bits_eq wk wr)

(* --- sparse backend over random connected netlists --------------------- *)

let sparse_nat = Sim.Stamps.Sparse Linalg.Sparse.Natural
let sparse_md = Sim.Stamps.Sparse Linalg.Sparse.Min_degree

let try_dc backend c =
  match Sim.Dcop.solve ~backend ~proc:P.c06 ~kind:M.Level1 c with
  | op -> Some op
  | exception Phys.Numerics.No_convergence _ -> None

let rel_close a b =
  Float.abs (a -. b)
  <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* Min-degree picks a different elimination order than the dense kernel,
   so rounding differs by O(cond * eps): an unlucky ill-conditioned
   random netlist can reach ~1e-7 relative (e.g. (nodes, seed) =
   (21, 74041) at 10 kHz) with both answers individually fine.  1e-6
   keeps the property robust to conditioning while still failing hard on
   any real ordering bug, which produces O(1) errors. *)
let md_tol = 1e-6

let rel_close_md a b =
  Float.abs (a -. b)
  <= md_tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let cx_close_md (a : Complex.t) (b : Complex.t) =
  Complex.norm (Complex.sub a b) <= md_tol *. Float.max 1.0 (Complex.norm a)

let prop_sparse_dc_bit_identical =
  QCheck.Test.make ~count:60
    ~name:"sparse-natural DC bit-identical to kernel on random netlists"
    QCheck.(pair (int_range 2 30) (int_range 0 100000))
    (fun (nodes, seed) ->
      let c, _ = Gen_netlist.make ~nodes ~seed in
      match (try_dc Sim.Stamps.Kernel c, try_dc sparse_nat c) with
      | None, None -> true
      | Some k, Some s ->
        Sim.Dcop.iterations k = Sim.Dcop.iterations s
        && Array.for_all
             (fun nd ->
               bits_eq (Sim.Dcop.voltage k nd) (Sim.Dcop.voltage s nd))
             (Sim.Indexing.node_names (Sim.Dcop.indexing k))
      | _ -> false)

let prop_sparse_dc_min_degree_close =
  QCheck.Test.make ~count:60
    ~name:"sparse min-degree DC within 1e-6 of kernel on random netlists"
    QCheck.(pair (int_range 2 30) (int_range 0 100000))
    (fun (nodes, seed) ->
      let c, _ = Gen_netlist.make ~nodes ~seed in
      match try_dc Sim.Stamps.Kernel c with
      | None -> true
      | Some k -> (
        match try_dc sparse_md c with
        | None -> false
        | Some s ->
          Array.for_all
            (fun nd ->
              rel_close_md (Sim.Dcop.voltage k nd) (Sim.Dcop.voltage s nd))
            (Sim.Indexing.node_names (Sim.Dcop.indexing k))))

let ac_freqs = [ 1.0; 1e4; 1e7; 1e9 ]

let prop_sparse_ac_bit_identical =
  QCheck.Test.make ~count:40
    ~name:"sparse-natural AC bit-identical to kernel on random netlists"
    QCheck.(pair (int_range 2 25) (int_range 0 100000))
    (fun (nodes, seed) ->
      let c, out = Gen_netlist.make ~nodes ~seed in
      match try_dc Sim.Stamps.Kernel c with
      | None -> true
      | Some op ->
        let net = Sim.Acs.prepare op in
        List.for_all
          (fun freq ->
            let hk =
              Sim.Acs.transfer ~backend:Sim.Stamps.Kernel net ~freq ~out
            in
            let hs = Sim.Acs.transfer ~backend:sparse_nat net ~freq ~out in
            bits_eq hk.Complex.re hs.Complex.re
            && bits_eq hk.Complex.im hs.Complex.im)
          ac_freqs)

let prop_sparse_ac_min_degree_close =
  QCheck.Test.make ~count:40
    ~name:"sparse min-degree AC within 1e-6 of kernel on random netlists"
    QCheck.(pair (int_range 2 25) (int_range 0 100000))
    (fun (nodes, seed) ->
      let c, out = Gen_netlist.make ~nodes ~seed in
      match try_dc Sim.Stamps.Kernel c with
      | None -> true
      | Some op ->
        let net = Sim.Acs.prepare op in
        List.for_all
          (fun freq ->
            let hk =
              Sim.Acs.transfer ~backend:Sim.Stamps.Kernel net ~freq ~out
            in
            let hs = Sim.Acs.transfer ~backend:sparse_md net ~freq ~out in
            cx_close_md hk hs)
          ac_freqs)

let try_tran backend c =
  match
    Sim.Tran.run ~backend ~proc:P.c06 ~kind:M.Level1 ~tstop:2e-7 ~dt:1e-8 c
  with
  | r -> Some r
  | exception Phys.Numerics.No_convergence _ -> None

let prop_sparse_tran_bit_identical =
  QCheck.Test.make ~count:20
    ~name:"sparse-natural transient bit-identical to kernel on random netlists"
    QCheck.(pair (int_range 2 15) (int_range 0 100000))
    (fun (nodes, seed) ->
      let c, out = Gen_netlist.make ~nodes ~seed in
      match (try_tran Sim.Stamps.Kernel c, try_tran sparse_nat c) with
      | None, None -> true
      | Some k, Some s ->
        Array.for_all2 bits_eq (Sim.Tran.waveform k out)
          (Sim.Tran.waveform s out)
      | _ -> false)

let prop_sparse_tran_min_degree_close =
  QCheck.Test.make ~count:20
    ~name:"sparse min-degree transient within 1e-6 of kernel on random netlists"
    QCheck.(pair (int_range 2 15) (int_range 0 100000))
    (fun (nodes, seed) ->
      let c, out = Gen_netlist.make ~nodes ~seed in
      match (try_tran Sim.Stamps.Kernel c, try_tran sparse_md c) with
      (* unlike the bit-identical natural mode, min-degree Newton iterates
         legitimately differ in the last bits, so a borderline transient
         may converge under one backend and not the other — only compare
         runs that both completed *)
      | Some k, Some s ->
        Array.for_all2 rel_close_md (Sim.Tran.waveform k out)
          (Sim.Tran.waveform s out)
      | _ -> true)

let edge_cases =
  [
    case "floating node handled by gmin" test_floating_node_gmin;
    case "source-only circuit" test_source_only_circuit;
    case "cascaded RC matches analytic" test_two_stage_rc_transfer;
    case "cold-start DC convergence" test_dc_without_guess_converges;
    case "DC backends bit-identical" test_backend_dc_bit_identical;
    case "AC backends bit-identical" test_backend_ac_bit_identical;
    case "interleaved AC factorisations" test_backend_ac_interleaved_factors;
    case "transient backends bit-identical" test_backend_tran_bit_identical;
  ]


let suite =
  ( "sim",
    [
      case "resistive divider" test_divider;
      case "current source into resistor" test_current_source;
      case "diode-connected nmos" test_diode_connected_nmos;
      case "nmos current mirror" test_nmos_mirror;
      case "pmos device biasing" test_pmos_follower;
      case "RC transfer function" test_rc_transfer;
      case "common-source gain" test_common_source_gain;
      case "output resistance" test_output_resistance_measure;
      case "unity gain frequency" test_unity_gain_freq;
      case "resistor thermal noise" test_resistor_noise;
      case "mos input-referred noise" test_mos_noise_input_referred;
      case "RC step response" test_rc_step;
      case "capacitor ramp slope" test_cap_ramp_slope;
      case "settling time" test_settling_time;
    ]
    @ edge_cases
    @ qcheck_cases
        [
          prop_divider_matches_analytic;
          prop_sparse_dc_bit_identical;
          prop_sparse_dc_min_degree_close;
          prop_sparse_ac_bit_identical;
          prop_sparse_ac_min_degree_close;
          prop_sparse_tran_bit_identical;
          prop_sparse_tran_min_degree_close;
        ] )

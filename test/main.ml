let () =
  Alcotest.run "losac"
    [
      Suite_phys.suite;
      Suite_linalg.suite;
      Suite_technology.suite;
      Suite_device.suite;
      Suite_netlist.suite;
      Suite_parser.suite;
      Suite_sim.suite;
      Suite_layout.suite;
      Suite_sizing.suite;
      Suite_core.suite;
      Suite_obs.suite;
      Suite_hist.suite;
      Suite_par.suite;
      Suite_gate.suite;
      Suite_cache.suite;
      Suite_statistics.suite;
      Suite_serve.suite;
      Suite_opt.suite;
    ]

open Helpers
module J = Obs.Json
module P = Serve.Protocol

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

(* --- wire protocol -------------------------------------------------------- *)

(* Shortest-round-trip float emission is what makes the canonical-form
   byte-identity claim hold across a parse/print cycle: a request that
   travelled through the socket must decode to bit-equal floats. *)
let prop_float_roundtrip =
  QCheck.Test.make ~name:"json numbers round-trip bit-exactly" ~count:2000
    QCheck.float (fun v ->
      QCheck.assume (Float.is_finite v);
      match J.parse (J.to_string (J.Num v)) with
      | Ok (J.Num v') -> Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v')
      | _ -> false)

let workload_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return P.Ping);
        (1, map (fun s -> P.Sleep { seconds = s }) (float_bound_inclusive 0.01));
        (1, return P.Tech);
        (1, return P.Stats);
        (2,
         map
           (fun i ->
             P.Synth { case = Option.get (P.case_of_int (1 + (i mod 4))) })
           small_nat);
        (2,
         map
           (fun i ->
             P.Size
               { topology = List.nth [ "folded-cascode"; "two-stage"; "5t" ]
                   (i mod 3) })
           small_nat);
        (2,
         map2 (fun n seed -> P.Mc { n = 1 + n; seed }) small_nat small_nat);
        (1, return P.Corners);
        (2,
         map2
           (fun samples seed -> P.Verify { samples = 1 + samples; seed })
           small_nat small_nat);
        (2,
         map3
           (fun starts budget nm ->
             P.Optimize
               {
                 starts = 1 + starts;
                 budget = 8 + budget;
                 strategy = (if nm then "nm" else "anneal");
                 lut = nm;
               })
           small_nat small_nat bool);
      ])

let request_gen =
  QCheck.Gen.(
    let opt g = frequency [ (1, return None); (2, map Option.some g) ] in
    let finite =
      map (fun v -> if Float.is_finite v then v else 1.0) (float_bound_inclusive 1e12)
    in
    workload_gen >>= fun workload ->
    int_bound 100000 >>= fun id ->
    oneofl [ "c06"; "c035" ] >>= fun proc ->
    oneofl [ Device.Model.Level1; Device.Model.Bsim_lite ] >>= fun kind ->
    finite >>= fun vdd ->
    finite >>= fun gbw ->
    opt (int_bound 7) >>= fun jobs ->
    opt (int_bound 64) >>= fun chunk ->
    opt bool >>= fun cache ->
    opt
      (oneofl
         [ Sim.Stamps.Kernel; Sim.Stamps.Reference;
           Sim.Stamps.Sparse Linalg.Sparse.Min_degree;
           Sim.Stamps.Sparse Linalg.Sparse.Natural ])
    >>= fun backend ->
    opt (int_bound 9999) >>= fun seed ->
    opt (float_bound_inclusive 10.0) >>= fun timeout_s ->
    bool >>= fun telemetry ->
    return
      (P.request ~id ~proc ~kind
         ~spec:{ Comdiac.Spec.paper_ota with Comdiac.Spec.vdd; gbw }
         ?jobs ?chunk ?cache ?backend ?seed ?timeout_s ~telemetry workload))

let prop_request_roundtrip =
  QCheck.Test.make ~name:"requests round-trip through the wire encoding"
    ~count:300
    (QCheck.make request_gen)
    (fun r ->
      let doc = J.to_string (P.request_to_json r) in
      match J.parse doc with
      | Error _ -> false
      | Ok json ->
        (match P.request_of_json json with
         | Error _ -> false
         | Ok r' -> String.equal doc (J.to_string (P.request_to_json r'))))

let test_request_decode_errors () =
  let decode s =
    match J.parse s with
    | Error m -> Error m
    | Ok json -> Result.map (fun _ -> ()) (P.request_of_json json)
  in
  let is_error what = function
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s unexpectedly decoded" what
  in
  is_error "wrong version"
    (decode {|{"api":"losac.job/0","workload":{"kind":"ping"}}|});
  is_error "missing workload" (decode {|{"api":"losac.job/1"}|});
  is_error "unknown workload"
    (decode {|{"api":"losac.job/1","workload":{"kind":"?"}}|});
  is_error "bad case"
    (decode {|{"api":"losac.job/1","workload":{"kind":"synth","case":9}}|});
  is_error "bad timeout"
    (decode {|{"api":"losac.job/1","workload":{"kind":"ping"},"timeout_s":-1}|});
  is_error "ill-typed spec"
    (decode
       {|{"api":"losac.job/1","workload":{"kind":"ping"},"spec":{"vdd":"x"}}|});
  (match decode {|{"api":"losac.job/1","workload":{"kind":"ping"}}|} with
   | Ok () -> ()
   | Error m -> Alcotest.failf "minimal request rejected: %s" m);
  Alcotest.(check int) "salvage_id finds the id" 17
    (P.salvage_id (Result.get_ok (J.parse {|{"id":17,"workload":"?"}|})));
  Alcotest.(check int) "salvage_id defaults to -1" (-1)
    (P.salvage_id (Result.get_ok (J.parse {|{"workload":"?"}|})))

let test_response_message_roundtrip () =
  let resp =
    {
      P.rid = 3;
      workload = "mc";
      status = P.Failed (Sim.Sim_error.Timeout { analysis = "mc"; after_s = 0.5 });
      payload = J.Null;
      meta = [ ("elapsed_s", J.Num 1.25) ];
    }
  in
  match
    Result.bind
      (J.parse (J.to_string (P.response_to_json resp)))
      P.message_of_json
  with
  | Ok (P.Final r) ->
    Alcotest.(check string) "canonical survives the wire" (P.canonical resp)
      (P.canonical r);
    Alcotest.(check int) "rid survives" 3 r.P.rid
  | Ok (P.Event _) -> Alcotest.fail "final decoded as event"
  | Error m -> Alcotest.failf "response did not round-trip: %s" m

(* --- framing --------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  let payloads = [ ""; "x"; String.make 70000 'j'; "{\"k\":1}" ] in
  List.iter (fun p -> Serve.Frame.write a p) payloads;
  List.iter
    (fun p ->
      match Serve.Frame.read b with
      | Some got ->
        Alcotest.(check int) "frame length preserved" (String.length p)
          (String.length got);
        Alcotest.(check bool) "frame bytes preserved" true (String.equal p got)
      | None -> Alcotest.fail "unexpected EOF")
    payloads;
  Unix.close a;
  Alcotest.(check bool) "clean EOF at a frame boundary is None" true
    (Serve.Frame.read b = None)

let test_frame_oversized () =
  with_socketpair @@ fun a b ->
  Serve.Frame.write a (String.make 4096 '!');
  (match Serve.Frame.read ~max_frame:128 b with
   | exception Serve.Frame.Oversized { length; limit } ->
     Alcotest.(check int) "announced length" 4096 length;
     Alcotest.(check int) "limit echoed" 128 limit
   | _ -> Alcotest.fail "oversized frame accepted")

let test_frame_truncated () =
  with_socketpair @@ fun a b ->
  (* a header promising 100 bytes, then only 3 and EOF *)
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 100l;
  ignore (Unix.write a header 0 4);
  ignore (Unix.write_substring a "abc" 0 3);
  Unix.close a;
  match Serve.Frame.read b with
  | exception Serve.Frame.Truncated -> ()
  | _ -> Alcotest.fail "mid-frame EOF not detected"

(* --- the shared dispatcher ------------------------------------------------- *)

let test_api_ping () =
  let r = Serve.Api.execute (P.request P.Ping) in
  (match r.P.status with
   | P.Done -> ()
   | _ -> Alcotest.failf "ping failed: %s" (P.status_string r.P.status));
  Alcotest.(check string) "payload" "{\"pong\":true}" (J.to_string r.P.payload)

let test_api_bad_inputs () =
  let status w ~proc =
    (Serve.Api.execute (P.request ~proc w)).P.status
  in
  (match status P.Ping ~proc:"c999" with
   | P.Bad_request _ -> ()
   | s -> Alcotest.failf "unknown tech gave %s" (P.status_string s));
  match status (P.Size { topology = "nonsense" }) ~proc:"c06" with
  | P.Bad_request _ -> ()
  | s -> Alcotest.failf "unknown topology gave %s" (P.status_string s)

let test_api_timeout () =
  (* a zero deadline must fail cooperatively between samples, never hang *)
  let r =
    Serve.Api.execute
      (P.request ~timeout_s:0.0 (P.Mc { n = 50; seed = 2 }))
  in
  match r.P.status with
  | P.Failed (Sim.Sim_error.Timeout { analysis; _ }) ->
    Alcotest.(check string) "classified analysis" "montecarlo" analysis
  | s -> Alcotest.failf "expected timeout, got %s" (P.status_string s)

let test_result_variants () =
  (* the raising and _result entry points agree on success... *)
  let ctx = Exec.Ctx.make ~label:"test" proc in
  (match Comdiac.Montecarlo.run_result ~n:3 ~seed:9 ~ctx ~kind ~spec
           (Comdiac.Folded_cascode.size ~proc ~kind ~spec
              ~parasitics:Comdiac.Parasitics.single_fold)
             .Comdiac.Folded_cascode.amp
   with
   | Ok r -> Alcotest.(check int) "three samples" 3 r.Comdiac.Montecarlo.offset_stats.Comdiac.Montecarlo.n
   | Error e -> Alcotest.failf "mc failed: %s" (Sim.Sim_error.message e));
  (* ...and an expired deadline comes back as Error Timeout, not an
     exception *)
  let dead = Exec.Ctx.with_timeout (Some 0.0) ctx in
  match
    Core.Flow.run_result ~ctx:dead ~kind ~spec Core.Flow.Case1
  with
  | Error (Sim.Sim_error.Timeout _) -> ()
  | Ok _ -> Alcotest.fail "expired deadline ran to completion"
  | Error e -> Alcotest.failf "wrong error: %s" (Sim.Sim_error.message e)

(* --- the daemon ------------------------------------------------------------ *)

let temp_socket () =
  let p = Filename.temp_file "losac-test" ".sock" in
  (try Unix.unlink p with Unix.Unix_error _ -> ());
  p

let with_server ?(config = Serve.Server.default_config) f =
  let path = temp_socket () in
  let server =
    Serve.Server.start { config with Serve.Server.socket_path = Some path }
  in
  Fun.protect
    ~finally:(fun () -> try Serve.Server.stop server with _ -> ())
    (fun () -> f server path)

let test_served_equals_direct () =
  (* N concurrent clients submitting the same job must all receive the
     byte-identical canonical response the one-shot CLI would print. *)
  with_server @@ fun _server path ->
  let req = P.request ~id:11 (P.Mc { n = 4; seed = 7 }) in
  let expected = P.canonical (Serve.Api.execute req) in
  let results = Array.make 4 "" in
  let threads =
    List.init 4 (fun k ->
      Thread.create
        (fun () ->
          let c = Serve.Client.connect path in
          results.(k) <- P.canonical (Serve.Client.call c req);
          Serve.Client.close c)
        ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun k got ->
      Alcotest.(check bool)
        (Printf.sprintf "client %d bit-identical to the direct call" k)
        true
        (String.equal expected got))
    results

let test_optimize_served_equals_direct () =
  (* the optimize workload over the wire must return the byte-identical
     canonical response the one-shot `losac optimize --format json`
     path computes (both go through Serve.Api.execute) *)
  with_server @@ fun _server path ->
  let req =
    P.request ~id:12 ~seed:5
      (P.Optimize { starts = 2; budget = 16; strategy = "nm"; lut = true })
  in
  let direct = Serve.Api.execute req in
  (match direct.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "optimize failed: %s" (P.status_string s));
  let c = Serve.Client.connect path in
  let served = Serve.Client.call c req in
  Serve.Client.close c;
  Alcotest.(check bool) "served bit-identical to the direct call" true
    (String.equal (P.canonical direct) (P.canonical served))

let test_optimize_cancel () =
  (* a deliberately huge budget: the run must die at a candidate
     boundary long before finishing *)
  with_server @@ fun _server path ->
  let c = Serve.Client.connect path in
  Serve.Client.submit c
    (P.request ~id:33
       (P.Optimize
          { starts = 4; budget = 100000; strategy = "anneal"; lut = true }));
  Thread.delay 0.15;
  Serve.Client.submit c (P.request ~id:34 (P.Cancel { target = 33 }));
  let ack = Serve.Client.await c 34 in
  (match ack.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "cancel ack gave %s" (P.status_string s));
  let r = Serve.Client.await c 33 in
  Serve.Client.close c;
  match r.P.status with
  | P.Cancelled -> ()
  | s -> Alcotest.failf "expected cancelled, got %s" (P.status_string s)

let test_served_events_in_order () =
  with_server @@ fun _server path ->
  let c = Serve.Client.connect path in
  let events = ref [] in
  let r =
    Serve.Client.call
      ~on_event:(fun e -> events := e :: !events)
      c
      (P.request ~id:5 ~telemetry:true P.Ping)
  in
  Serve.Client.close c;
  (match r.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "ping failed: %s" (P.status_string s));
  match List.rev !events with
  | [ P.Ack { rid = 5; queue_depth }; P.Started { rid = 5 };
      P.Telemetry { rid = 5; _ } ] ->
    Alcotest.(check bool) "ack carries a sane depth" true (queue_depth >= 1)
  | es -> Alcotest.failf "unexpected event sequence (%d events)" (List.length es)

let test_served_malformed_keeps_connection () =
  with_server @@ fun _server path ->
  (* raw invalid JSON: the framing is intact, so the server answers
     invalid_request and the connection must stay usable *)
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  Serve.Frame.write sock "this is not json";
  (match Serve.Frame.read sock with
   | Some payload ->
     (match Result.bind (J.parse payload) P.message_of_json with
      | Ok (P.Final r) ->
        (match r.P.status with
         | P.Bad_request _ -> ()
         | s -> Alcotest.failf "malformed gave %s" (P.status_string s));
        Alcotest.(check int) "salvaged id is -1" (-1) r.P.rid
      | _ -> Alcotest.fail "expected a final error response")
   | None -> Alcotest.fail "connection closed on malformed JSON");
  (* same connection still serves valid requests *)
  Serve.Frame.write sock
    (J.to_string (P.request_to_json (P.request ~id:8 P.Ping)));
  let rec final () =
    match Serve.Frame.read sock with
    | None -> Alcotest.fail "EOF before the ping response"
    | Some payload ->
      (match Result.bind (J.parse payload) P.message_of_json with
       | Ok (P.Final r) -> r
       | Ok (P.Event _) -> final ()
       | Error m -> Alcotest.failf "bad frame: %s" m)
  in
  let r = final () in
  Alcotest.(check int) "ping answered on the same connection" 8 r.P.rid;
  Unix.close sock

let test_served_oversized_closes_connection () =
  with_server ~config:{ Serve.Server.default_config with max_frame = 256 }
  @@ fun _server path ->
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  Serve.Frame.write sock (String.make 1024 'x');
  (match Serve.Frame.read sock with
   | Some payload ->
     (match Result.bind (J.parse payload) P.message_of_json with
      | Ok (P.Final r) ->
        (match r.P.status with
         | P.Bad_request msg ->
           Alcotest.(check bool) "mentions the limit" true
             (String.length msg > 0)
         | s -> Alcotest.failf "oversized gave %s" (P.status_string s))
      | _ -> Alcotest.fail "expected a final error response")
   | None -> Alcotest.fail "no error response before close");
  (* the stream is unusable past an oversized header: EOF follows *)
  (match Serve.Frame.read sock with
   | None -> ()
   | Some _ -> Alcotest.fail "connection survived an oversized frame"
   | exception Serve.Frame.Truncated -> ());
  Unix.close sock

let test_served_overloaded () =
  (* pinned to one executor: the assertions below rely on single-executor
     ordering (job 2 stays queued while job 1 runs, so the queue is full
     when job 3 arrives) *)
  with_server
    ~config:
      { Serve.Server.default_config with queue_limit = 1; executors = 1 }
  @@ fun _server path ->
  let c = Serve.Client.connect path in
  (* occupy the executor; once it dequeues job 1 the queue is empty again *)
  Serve.Client.submit c (P.request ~id:1 (P.Sleep { seconds = 0.6 }));
  Thread.delay 0.15;
  (* queue_limit = 1: one more job fills the queue, the next is rejected *)
  Serve.Client.submit c (P.request ~id:2 (P.Sleep { seconds = 0.01 }));
  Serve.Client.submit c (P.request ~id:3 P.Ping);
  let r3 = Serve.Client.await c 3 in
  (match r3.P.status with
   | P.Overloaded { depth; limit } ->
     Alcotest.(check int) "limit echoed" 1 limit;
     Alcotest.(check bool) "depth at the limit" true (depth >= 1)
   | s -> Alcotest.failf "expected overloaded, got %s" (P.status_string s));
  (* [await] discards other ids' finals, so collect them in executor
     order: job 1 answers before job 2 *)
  let r1 = Serve.Client.await c 1 in
  (match r1.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "running job failed: %s" (P.status_string s));
  let r2 = Serve.Client.await c 2 in
  (match r2.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "queued job failed: %s" (P.status_string s));
  Serve.Client.close c

let test_shutdown_drains () =
  let path = temp_socket () in
  let server =
    Serve.Server.start
      { Serve.Server.default_config with socket_path = Some path }
  in
  let c = Serve.Client.connect path in
  Serve.Client.submit c (P.request ~id:21 (P.Sleep { seconds = 0.3 }));
  Thread.delay 0.05;
  (* stop() blocks until the admitted job has answered *)
  Serve.Server.stop server;
  Alcotest.(check int) "the in-flight job completed" 1
    (Serve.Server.jobs_done server);
  let r = Serve.Client.await c 21 in
  (match r.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "drained job failed: %s" (P.status_string s));
  Serve.Client.close c;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* --- context-local execution flags ----------------------------------------- *)

(* The four pairwise-conflicting switch combinations of the tentpole
   acceptance test: cache on/off x backend kernel/sparse-natural. *)
let conflict_combos =
  [
    (true, Sim.Stamps.Kernel);
    (false, Sim.Stamps.Kernel);
    (true, Sim.Stamps.Sparse Linalg.Sparse.Natural);
    (false, Sim.Stamps.Sparse Linalg.Sparse.Natural);
  ]

let prop_conflicting_ctx_identity =
  QCheck.Test.make
    ~name:
      "4 concurrent jobs with conflicting ctx flags are bit-identical to \
       their solo runs"
    ~count:3
    QCheck.(make Gen.(int_bound 1000))
    (fun base_seed ->
      let reqs =
        List.mapi
          (fun k (cache, backend) ->
            P.request ~id:(100 + k) ~cache ~backend
              (P.Mc { n = 2; seed = base_seed + k }))
          conflict_combos
      in
      (* solo reference: each request executed alone, sequentially *)
      let solo = List.map (fun r -> P.canonical (Serve.Api.execute r)) reqs in
      let served = Array.make (List.length reqs) "" in
      with_server ~config:{ Serve.Server.default_config with executors = 4 }
      @@ fun _server path ->
      let threads =
        List.mapi
          (fun k req ->
            Thread.create
              (fun () ->
                let c = Serve.Client.connect path in
                served.(k) <- P.canonical (Serve.Client.call c req);
                Serve.Client.close c)
              ())
          reqs
      in
      List.iter Thread.join threads;
      List.for_all2 String.equal solo (Array.to_list served))

let test_scope_restores_nothing_global () =
  (* a scope with every switch overridden must leave the process globals
     untouched: other domains see them unchanged mid-scope, and the
     binding domain sees them again after exit *)
  Cache.Config.set_enabled true;
  Obs.Config.set_enabled false;
  Sim.Stamps.set_default_backend Sim.Stamps.Kernel;
  let globals_elsewhere () =
    Domain.join
      (Domain.spawn (fun () ->
           ( Cache.Config.enabled (),
             Obs.Config.enabled (),
             Sim.Stamps.default_backend () )))
  in
  let ctx =
    Exec.Ctx.make ~cache:false ~telemetry:true
      ~backend:(Sim.Stamps.Sparse Linalg.Sparse.Min_degree) proc
  in
  (match
     Exec.Ctx.scope (Some ctx) (fun () ->
         Alcotest.(check bool) "cache off inside the scope" false
           (Cache.Config.enabled ());
         Alcotest.(check bool) "telemetry on inside the scope" true
           (Obs.Config.enabled ());
         (match Sim.Stamps.default_backend () with
          | Sim.Stamps.Sparse Linalg.Sparse.Min_degree -> ()
          | _ -> Alcotest.fail "backend not bound inside the scope");
         let c, o, b = globals_elsewhere () in
         Alcotest.(check bool) "other domains: cache global intact" true c;
         Alcotest.(check bool) "other domains: telemetry global intact" false
           o;
         match b with
         | Sim.Stamps.Kernel -> ()
         | _ -> Alcotest.fail "backend global leaked to another domain")
   with
   | Ok () -> ()
   | Error e -> raise e);
  Alcotest.(check bool) "cache global restored" true (Cache.Config.enabled ());
  Alcotest.(check bool) "telemetry global restored" false
    (Obs.Config.enabled ());
  match Sim.Stamps.default_backend () with
  | Sim.Stamps.Kernel -> ()
  | _ -> Alcotest.fail "backend global not restored after the scope"

(* --- cancellation ----------------------------------------------------------- *)

let test_cancel_running () =
  with_server @@ fun _server path ->
  let c = Serve.Client.connect path in
  let t0 = Obs.Clock.monotonic_s () in
  Serve.Client.submit c (P.request ~id:31 (P.Sleep { seconds = 2.0 }));
  Thread.delay 0.1;
  Serve.Client.submit c (P.request ~id:32 (P.Cancel { target = 31 }));
  (* the acknowledgement overtakes the cancelled job's final *)
  let ack = Serve.Client.await c 32 in
  (match ack.P.status with
   | P.Done ->
     Alcotest.(check string) "ack says cancelled"
       {|{"target":31,"cancelled":true}|}
       (J.to_string ack.P.payload)
   | s -> Alcotest.failf "cancel ack gave %s" (P.status_string s));
  let r = Serve.Client.await c 31 in
  Serve.Client.close c;
  (match r.P.status with
   | P.Cancelled -> ()
   | s -> Alcotest.failf "expected cancelled, got %s" (P.status_string s));
  let elapsed = Obs.Clock.monotonic_s () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "aborted the 2 s sleep early (%.2f s)" elapsed)
    true (elapsed < 1.0)

let test_cancel_queued () =
  (* one executor: the target stays queued behind the sleep, so it is
     answered [cancelled] at pop without ever executing *)
  with_server ~config:{ Serve.Server.default_config with executors = 1 }
  @@ fun _server path ->
  let c = Serve.Client.connect path in
  Serve.Client.submit c (P.request ~id:41 (P.Sleep { seconds = 0.4 }));
  Thread.delay 0.1;
  Serve.Client.submit c (P.request ~id:42 (P.Mc { n = 4; seed = 3 }));
  Serve.Client.submit c (P.request ~id:43 (P.Cancel { target = 42 }));
  let ack = Serve.Client.await c 43 in
  (match ack.P.status with
   | P.Done ->
     Alcotest.(check string) "ack says cancelled"
       {|{"target":42,"cancelled":true}|}
       (J.to_string ack.P.payload)
   | s -> Alcotest.failf "cancel ack gave %s" (P.status_string s));
  (* finals arrive in executor order on one executor: the running job
     41 answers first, the cancelled 42 right after it ([await]
     discards other ids, so collect in arrival order) *)
  let r41 = Serve.Client.await c 41 in
  (match r41.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "unrelated job gave %s" (P.status_string s));
  let r42 = Serve.Client.await c 42 in
  (match r42.P.status with
   | P.Cancelled -> ()
   | s -> Alcotest.failf "queued target gave %s" (P.status_string s));
  Serve.Client.close c

let test_cancel_unknown_target () =
  with_server @@ fun _server path ->
  let c = Serve.Client.connect path in
  let ack = Serve.Client.call c (P.request ~id:51 (P.Cancel { target = 999 })) in
  Serve.Client.close c;
  match ack.P.status with
  | P.Done ->
    Alcotest.(check string) "ack says not found"
      {|{"target":999,"cancelled":false}|}
      (J.to_string ack.P.payload)
  | s -> Alcotest.failf "cancel of unknown target gave %s" (P.status_string s)

(* --- multi-executor scheduling ---------------------------------------------- *)

let test_executors_overlap () =
  (* two 0.3 s sleeps from two clients must overlap on two executors *)
  with_server ~config:{ Serve.Server.default_config with executors = 2 }
  @@ fun server path ->
  Alcotest.(check int) "clamped executor count" 2 (Serve.Server.executors server);
  let t0 = Obs.Clock.monotonic_s () in
  let threads =
    List.init 2 (fun k ->
      Thread.create
        (fun () ->
          let c = Serve.Client.connect path in
          let r =
            Serve.Client.call c
              (P.request ~id:(60 + k) (P.Sleep { seconds = 0.3 }))
          in
          Serve.Client.close c;
          match r.P.status with
          | P.Done -> ()
          | s -> Alcotest.failf "sleep failed: %s" (P.status_string s))
        ())
  in
  List.iter Thread.join threads;
  let wall = Obs.Clock.monotonic_s () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "two 0.3 s sleeps overlapped (wall %.2f s)" wall)
    true
    (wall < 0.55);
  let stats = Serve.Server.executor_stats server in
  Alcotest.(check int) "one stats row per executor" 2 (List.length stats);
  Alcotest.(check int) "both jobs accounted" 2
    (List.fold_left (fun acc s -> acc + s.Serve.Server.ex_jobs) 0 stats)

let test_round_robin_fairness () =
  (* a client pipelining a deep backlog must not starve another client's
     single request: round-robin admission serves B after at most one of
     A's queued jobs *)
  with_server ~config:{ Serve.Server.default_config with executors = 1 }
  @@ fun _server path ->
  let a = Serve.Client.connect path in
  for i = 1 to 8 do
    Serve.Client.submit a (P.request ~id:i (P.Sleep { seconds = 0.05 }))
  done;
  Thread.delay 0.02;
  let b = Serve.Client.connect path in
  let t0 = Obs.Clock.monotonic_s () in
  let r = Serve.Client.call b (P.request ~id:100 P.Ping) in
  let b_wait = Obs.Clock.monotonic_s () -. t0 in
  Serve.Client.close b;
  (match r.P.status with
   | P.Done -> ()
   | s -> Alcotest.failf "B's ping failed: %s" (P.status_string s));
  (* 8 x 0.05 s backlog; fairness bounds B's wait by ~2 slices, not the
     whole backlog *)
  Alcotest.(check bool)
    (Printf.sprintf "B served ahead of A's backlog (%.2f s)" b_wait)
    true (b_wait < 0.25);
  for i = 1 to 8 do
    match (Serve.Client.await a i).P.status with
    | P.Done -> ()
    | s -> Alcotest.failf "A's job %d failed: %s" i (P.status_string s)
  done;
  Serve.Client.close a

let suite =
  ( "serve",
    [
      case "request decode errors" test_request_decode_errors;
      case "response message round-trip" test_response_message_roundtrip;
      case "frame round-trip" test_frame_roundtrip;
      case "frame oversized" test_frame_oversized;
      case "frame truncated" test_frame_truncated;
      case "api ping" test_api_ping;
      case "api bad inputs" test_api_bad_inputs;
      case "api cooperative timeout" test_api_timeout;
      case "_result variants" test_result_variants;
      case "served equals direct (4 concurrent clients)"
        test_served_equals_direct;
      case "optimize: served equals the one-shot CLI result"
        test_optimize_served_equals_direct;
      case "optimize: cancellable at candidate boundaries"
        test_optimize_cancel;
      case "event order ack/started/telemetry" test_served_events_in_order;
      case "malformed request keeps the connection"
        test_served_malformed_keeps_connection;
      case "oversized frame closes the connection"
        test_served_oversized_closes_connection;
      case "queue-full submissions rejected as overloaded"
        test_served_overloaded;
      case "graceful shutdown drains in-flight jobs" test_shutdown_drains;
      case "scope exit restores nothing global"
        test_scope_restores_nothing_global;
      case "cancel aborts a running job" test_cancel_running;
      case "cancel answers a queued job without executing it"
        test_cancel_queued;
      case "cancel of an unknown target acks cancelled:false"
        test_cancel_unknown_target;
      case "two executors overlap sleeps" test_executors_overlap;
      case "round-robin admission keeps clients fair"
        test_round_robin_fairness;
    ]
    @ qcheck_cases
        [
          prop_float_roundtrip; prop_request_roundtrip;
          prop_conflicting_ctx_identity;
        ] )

open Helpers
module MC = Comdiac.Montecarlo
module M = Device.Model
module P = Technology.Process
module E = Technology.Electrical

let proc = P.c06
let kind = M.Bsim_lite
let spec = Comdiac.Spec.paper_ota

let design =
  lazy
    (Comdiac.Folded_cascode.size ~proc ~kind ~spec
       ~parasitics:Comdiac.Parasitics.single_fold)

let amp () = (Lazy.force design).Comdiac.Folded_cascode.amp

(* --- mismatch plumbing -------------------------------------------------- *)

let test_mismatch_shifts_current () =
  let dev = Device.Mos.make ~name:"m" ~mtype:E.Nmos ~w:10e-6 ~l:1e-6 () in
  let bias = { M.vgs = 1.1; vds = 1.5; vbs = 0.0 } in
  let nominal = M.drain_current kind (Device.Mos.params proc dev) ~w:10e-6 ~l:1e-6 bias in
  let hi_vt = Device.Mos.with_mismatch ~vto_shift:0.05 ~beta_scale:1.0 dev in
  let i_hi_vt =
    M.drain_current kind (Device.Mos.params proc hi_vt) ~w:10e-6 ~l:1e-6 bias
  in
  Alcotest.(check bool) "higher vth lowers current" true (i_hi_vt < nominal);
  let hi_beta = Device.Mos.with_mismatch ~vto_shift:0.0 ~beta_scale:1.1 dev in
  let i_hi_beta =
    M.drain_current kind (Device.Mos.params proc hi_beta) ~w:10e-6 ~l:1e-6 bias
  in
  check_close ~rel:1e-3 "beta scales current proportionally" (1.1 *. nominal)
    i_hi_beta

let test_pelgrom_scaling () =
  let sigma w l =
    let dev = Device.Mos.make ~name:"m" ~mtype:E.Nmos ~w ~l () in
    fst (Device.Mos.mismatch_sigma proc dev)
  in
  (* quadrupled area halves sigma *)
  check_close ~rel:1e-9 "area scaling" (sigma 10e-6 1e-6 /. 2.0)
    (sigma 20e-6 2e-6);
  check_in_range "order of magnitude for 10/1" 1e-3 5e-3 (sigma 10e-6 1e-6)

let test_stats_of () =
  let s = MC.stats_of [ 1.0; 2.0; 3.0; 4.0 ] in
  check_close "mean" 2.5 s.MC.mean;
  (* unbiased sample variance: sum of squared deviations / (n - 1) *)
  check_close ~rel:1e-9 "std (unbiased sample)" (sqrt (5.0 /. 3.0)) s.MC.std;
  check_close "min" 1.0 s.MC.minimum;
  check_close "max" 4.0 s.MC.maximum;
  let single = MC.stats_of [ 7.0 ] in
  check_close "single-element std" 0.0 single.MC.std

(* --- monte carlo --------------------------------------------------------- *)

let test_montecarlo_runs () =
  let r = MC.run ~seed:7 ~n:20 ~proc ~kind ~spec (amp ()) in
  Alcotest.(check int) "all samples converged" 20 r.MC.offset_stats.MC.n;
  (* offset spread dominated by but larger than the input-pair floor *)
  Alcotest.(check bool) "offset sigma above input-pair floor" true
    (r.MC.offset_stats.MC.std > 0.6 *. r.MC.predicted_offset_sigma);
  Alcotest.(check bool) "offset sigma within 5x of floor" true
    (r.MC.offset_stats.MC.std < 5.0 *. r.MC.predicted_offset_sigma);
  (* gain and GBW barely move under mismatch *)
  Alcotest.(check bool) "gain spread small" true (r.MC.gain_stats.MC.std < 2.0);
  Alcotest.(check bool) "gbw spread below 3%" true
    (r.MC.gbw_stats.MC.std < 0.03 *. r.MC.gbw_stats.MC.mean)

let test_montecarlo_reproducible () =
  let r1 = MC.run ~seed:3 ~n:5 ~proc ~kind ~spec (amp ()) in
  let r2 = MC.run ~seed:3 ~n:5 ~proc ~kind ~spec (amp ()) in
  check_close ~rel:1e-12 "same seed, same offsets" r1.MC.offset_stats.MC.mean
    r2.MC.offset_stats.MC.mean;
  let r3 = MC.run ~seed:4 ~n:5 ~proc ~kind ~spec (amp ()) in
  Alcotest.(check bool) "different seed differs" true
    (r3.MC.offset_stats.MC.mean <> r1.MC.offset_stats.MC.mean)

(* --- extended measurements ------------------------------------------------ *)

let tb = lazy (Comdiac.Testbench.make ~proc ~kind ~spec (amp ()))

let test_psrr () =
  let psrr_db = Sim.Measure.db (Comdiac.Testbench.psrr (Lazy.force tb)) in
  check_in_range "psrr plausible for a folded cascode" 30.0 120.0 psrr_db

let test_common_mode_range () =
  let lo, hi = Comdiac.Testbench.common_mode_range ~points:18 (Lazy.force tb) in
  let _, spec_hi = spec.Comdiac.Spec.icmr in
  (* PMOS input: works down to the bottom rail and must cover the spec's
     upper bound *)
  Alcotest.(check bool) "reaches the bottom rail" true (lo <= 0.2);
  Alcotest.(check bool) "covers the spec's top" true (hi >= spec_hi -. 0.2);
  Alcotest.(check bool) "non-degenerate interval" true (hi -. lo > 1.0)

(* --- corners and temperature ---------------------------------------------- *)

let test_corner_transformations () =
  let module C = Technology.Corner in
  let ss = C.apply C.SS proc in
  let nm p = p.P.electrical.E.nmos in
  Alcotest.(check bool) "slow nmos has higher vth" true
    ((nm ss).E.vto > (nm proc).E.vto);
  Alcotest.(check bool) "slow nmos has lower mobility" true
    ((nm ss).E.u0 < (nm proc).E.u0);
  let fs = C.apply C.FS proc in
  Alcotest.(check bool) "fs: fast nmos" true ((nm fs).E.vto < (nm proc).E.vto);
  Alcotest.(check bool) "fs: slow pmos" true
    (fs.P.electrical.E.pmos.E.vto > proc.P.electrical.E.pmos.E.vto);
  let hot = C.at_temperature (C.celsius 85.0) proc in
  Alcotest.(check bool) "hot lowers vth" true ((nm hot).E.vto < (nm proc).E.vto);
  Alcotest.(check bool) "hot lowers mobility" true ((nm hot).E.u0 < (nm proc).E.u0);
  check_close ~rel:1e-12 "tt is identity on cards" (nm (C.apply C.TT proc)).E.vto
    (nm proc).E.vto

let test_corner_currents () =
  (* drain current ordering across corners at fixed bias *)
  let module C = Technology.Corner in
  let i corner =
    let p = C.apply corner proc in
    M.drain_current kind p.P.electrical.E.nmos ~w:10e-6 ~l:1e-6
      { M.vgs = 1.2; vds = 1.5; vbs = 0.0 }
  in
  Alcotest.(check bool) "ff > tt > ss" true (i C.FF > i C.TT && i C.TT > i C.SS)

let test_robustness_frozen_bias () =
  let d = Lazy.force design in
  let r =
    Comdiac.Robustness.run ~proc ~kind ~spec d.Comdiac.Folded_cascode.amp
  in
  Alcotest.(check int) "seven points" 7 (List.length r.Comdiac.Robustness.points);
  (* frozen ideal biases do not track skewed corners *)
  Alcotest.(check bool) "frozen bias struggles across corners" true
    (not
       (Comdiac.Robustness.meets r ~spec ~gbw_slack:0.15 ~pm_slack:5.0))

let test_robustness_with_tracking_bias () =
  let d = Lazy.force design in
  let rebias p = Comdiac.Folded_cascode.rebias ~proc:p ~kind ~spec d in
  let r =
    Comdiac.Robustness.run ~rebias ~proc ~kind ~spec
      d.Comdiac.Folded_cascode.amp
  in
  Alcotest.(check bool) "all corners bias" true r.Comdiac.Robustness.all_biased;
  (* corner spread within ~20% of target with a tracking bias generator *)
  Alcotest.(check bool) "tracking bias holds GBW" true
    (r.Comdiac.Robustness.worst_gbw > 0.75 *. spec.Comdiac.Spec.gbw);
  Alcotest.(check bool) "tracking bias holds PM" true
    (r.Comdiac.Robustness.worst_pm > spec.Comdiac.Spec.phase_margin -. 5.0)

let suite =
  ( "statistics",
    [
      case "mismatch shifts model behaviour" test_mismatch_shifts_current;
      case "pelgrom area scaling" test_pelgrom_scaling;
      case "summary statistics" test_stats_of;
      case "monte carlo distribution" test_montecarlo_runs;
      case "monte carlo reproducible" test_montecarlo_reproducible;
      case "psrr measurement" test_psrr;
      case "input common-mode range" test_common_mode_range;
      case "corner transformations" test_corner_transformations;
      case "corner current ordering" test_corner_currents;
      case "robustness: frozen bias" test_robustness_frozen_bias;
      case "robustness: tracking bias" test_robustness_with_tracking_bias;
    ] )

(* losac - layout-oriented synthesis of analog circuits.

   Subcommands:
     losac size   - size an op-amp and verify it by simulation
     losac synth  - run the layout-oriented flow (Table-1 cases)
     losac layout - generate and render the layout of a synthesis run
     losac tech   - characterise the built-in technologies *)

open Cmdliner

let proc_conv =
  let parse s =
    match Technology.Process.find s with
    | p -> Ok p
    | exception Not_found ->
      Error
        (`Msg
           (Printf.sprintf "unknown technology %s (have: %s)" s
              (String.concat ", "
                 (List.map
                    (fun p -> p.Technology.Process.name)
                    Technology.Process.builtin))))
  in
  let print fmt p = Format.pp_print_string fmt p.Technology.Process.name in
  Arg.conv (parse, print)

let kind_conv =
  let parse = function
    | "level1" -> Ok Device.Model.Level1
    | "bsim-lite" | "bsim" -> Ok Device.Model.Bsim_lite
    | s -> Error (`Msg (Printf.sprintf "unknown model %s (level1|bsim-lite)" s))
  in
  let print fmt k = Format.pp_print_string fmt (Device.Model.kind_to_string k) in
  Arg.conv (parse, print)

let proc_arg =
  Arg.(value & opt proc_conv Technology.Process.c06
       & info [ "tech" ] ~docv:"NAME" ~doc:"Technology (c06 or c035).")

(* --- parallelism ------------------------------------------------------ *)

let jobs_term =
  let doc =
    "Worker domains for parallel sections (Monte Carlo sampling, \
     corner/temperature sweeps, multi-case synthesis).  Results are \
     bit-identical whatever the value; 1 disables parallelism.  Defaults \
     to the machine's recommended domain count."
  in
  Arg.(value
       & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "LOSAC_JOBS") ~doc)

let chunk_term =
  let doc =
    "Items per pool chunk for parallel sections.  Defaults to a \
     cost-aware adaptive size; pinning it makes chunk boundaries (and \
     hence per-chunk telemetry) reproducible across runs.  Results are \
     bit-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)

let seed_term =
  let doc =
    "Base RNG seed for every stochastic analysis (Monte Carlo sampling, \
     $(b,optimize) start points).  Same seed, same results at any \
     $(b,--jobs) count.  Overrides the $(b,LOSAC_SEED) environment \
     variable; defaults to 42."
  in
  Arg.(value
       & opt (some int) None
       & info [ "seed" ] ~docv:"N" ~env:(Cmd.Env.info "LOSAC_SEED") ~doc)

(* --- solver backend --------------------------------------------------- *)

let backend_conv =
  let parse s =
    match Sim.Stamps.backend_of_string s with
    | Ok b -> Ok b
    | Error msg -> Error (`Msg msg)
  in
  let print fmt b = Format.pp_print_string fmt (Sim.Stamps.backend_name b) in
  Arg.conv (parse, print)

let backend_term =
  let doc =
    "Linear-solver backend for every analysis: $(b,kernel) (dense unboxed \
     in-place LU, the default), $(b,reference) (boxed functor solver), \
     $(b,sparse) (CSR LU with fill-reducing minimum-degree ordering and \
     symbolic/numeric split — fastest on large circuits) or \
     $(b,sparse-natural) (sparse with the dense pivoting rule, \
     bit-identical to $(b,kernel)).  Overrides the $(b,LOSAC_BACKEND) \
     environment variable."
  in
  Arg.(value
       & opt (some backend_conv) None
       & info [ "backend" ] ~docv:"NAME"
           ~env:(Cmd.Env.info "LOSAC_BACKEND") ~doc)

(* --- caching ---------------------------------------------------------- *)

let cache_term =
  let doc_on =
    "Enable the content-addressed memo caches (device operating points, \
     layout variant generation, parasitic plans, Monte Carlo samples, \
     corner points).  This is the default; results are bit-identical \
     with caching on or off.  Overrides the $(b,LOSAC_CACHE) environment \
     variable."
  in
  let doc_off = "Disable the memo caches (cold run every time)." in
  Arg.(value
       & vflag None
           [ (Some true, info [ "cache" ] ~doc:doc_on);
             (Some false, info [ "no-cache" ] ~doc:doc_off) ])

(* The cache hit/miss/eviction table plus domain-pool utilization, the
   simulator latency quantiles and the profiler hot spots — the
   [losac stats] view, also available as --stats after any command. *)
let stats_view () =
  let caches = Cache.Memo.registry () in
  Format.printf "@.cache statistics:@.";
  if caches = [] then Format.printf "  (no caches created)@.";
  List.iter
    (fun (s : Cache.Memo.stats) ->
      Format.printf
        "  %-22s %8d hits %8d misses %6d evictions  %5.1f%% hit rate  \
         %d/%d entries@."
        s.Cache.Memo.name s.Cache.Memo.hits s.Cache.Memo.misses
        s.Cache.Memo.evictions
        (100.0 *. Cache.Memo.hit_rate s)
        s.Cache.Memo.entries s.Cache.Memo.capacity)
    caches;
  if Device.Lut.tables_built () > 0 then begin
    Format.printf "  %d operating-point LUT grid(s) built@."
      (Device.Lut.tables_built ());
    let t = Device.Lut.trust_check () in
    if t.Device.Lut.cells_visited > 0 then
      Format.printf
        "  LUT trust: %d grid cell(s) visited, max rel err %.3e vs exact@."
        t.Device.Lut.cells_visited t.Device.Lut.max_rel_err
  end;
  Format.printf "pool: %d worker domain(s), queue depth %d@."
    (Par.Pool.num_workers ()) (Par.Pool.queue_depth ());
  (match Par.Pool.worker_stats () with
   | [] -> Format.printf "  (pool never started -- no parallel section ran)@."
   | workers ->
     (* Workers first, then executors/callers, each group by domain id.
        Every chunk is accounted to exactly one domain (a caller-helps
        chunk lands on the submitting executor's own row, never also on
        a worker row), so the by-role totals below sum to the true chunk
        count even when several executors share the pool. *)
     let rank (w : Par.Pool.worker_stat) =
       if w.Par.Pool.ws_role = "worker" then 0 else 1
     in
     let workers =
       List.sort
         (fun a b ->
           match compare (rank a) (rank b) with
           | 0 -> compare a.Par.Pool.ws_domain b.Par.Pool.ws_domain
           | c -> c)
         workers
     in
     Format.printf "  %-8s %-8s %8s %12s %12s %6s %7s %8s %6s %9s@." "domain"
       "role" "tasks" "busy ms" "wait ms" "busy%" "steals" "attempts" "spins"
       "warmup ms";
     List.iter
       (fun (w : Par.Pool.worker_stat) ->
         Format.printf
           "  %-8d %-8s %8d %12.3f %12.3f %5.1f%% %7d %8d %6d %9.3f@."
           w.Par.Pool.ws_domain w.Par.Pool.ws_role w.Par.Pool.ws_tasks
           (w.Par.Pool.ws_busy_us /. 1e3)
           (w.Par.Pool.ws_wait_us /. 1e3)
           (100.0 *. w.Par.Pool.ws_busy_frac)
           w.Par.Pool.ws_steals w.Par.Pool.ws_steal_attempts
           w.Par.Pool.ws_steal_spins
           (w.Par.Pool.ws_warmup_us /. 1e3))
       workers;
     let by_role =
       List.fold_left
         (fun acc (w : Par.Pool.worker_stat) ->
           let role = w.Par.Pool.ws_role in
           let prev = try List.assoc role acc with Not_found -> 0 in
           (role, prev + w.Par.Pool.ws_tasks)
           :: List.remove_assoc role acc)
         [] workers
       |> List.sort (fun (a, _) (b, _) -> compare a b)
     in
     let total = List.fold_left (fun acc (_, n) -> acc + n) 0 by_role in
     Format.printf "  totals: %d task(s)%s@." total
       (if List.length by_role > 1 then
          " ("
          ^ String.concat ", "
              (List.map (fun (r, n) -> Printf.sprintf "%s %d" r n) by_role)
          ^ ")"
        else ""));
  let sim_hists =
    List.filter
      (fun n -> String.length n > 4 && String.sub n 0 4 = "sim.")
      (Obs.Metrics.hist_names ())
  in
  if sim_hists <> [] then begin
    Format.printf "@.simulator latency quantiles:@.";
    List.iter
      (fun n ->
        match Obs.Metrics.hist_stats n with
        | None -> ()
        | Some s ->
          Format.printf
            "  %-24s n=%-7d p50 %10.1f  p90 %10.1f  p99 %10.1f  max %10.1f@."
            n s.Obs.Metrics.count s.Obs.Metrics.p50 s.Obs.Metrics.p90
            s.Obs.Metrics.p99 s.Obs.Metrics.max)
      sim_hists
  end;
  if Obs.Prof.sites () <> [] then
    Format.printf "@.profile hot spots:@.%s" (Obs.Reporter.prof_table ())

(* --- telemetry and logging ------------------------------------------- *)

type telemetry = {
  trace : string option;
  metrics : bool;
  stats : bool;
  openmetrics : bool;
  prof_folded : string option;
  jobs : int option;
  chunk : int option;
  cache : bool option;
  backend : Sim.Stamps.backend option;
  seed : int option;
}

let telemetry_term =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON trace of the run to \
                   $(docv); open it in chrome://tracing or \
                   https://ui.perfetto.dev.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect telemetry and print the metrics table (Newton \
                   iteration totals, layout-call counts, parasitic \
                   convergence deltas, ...) after the run.")
  in
  let verbose =
    Arg.(value & flag_all
         & info [ "v"; "verbose" ]
             ~doc:"Increase log verbosity; repeatable ($(b,-v) info, \
                   $(b,-vv) debug).  Warnings (e.g. Newton \
                   divergence-and-retry) print by default.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the cache hit/miss/eviction table and the domain \
                   pool counters after the run (the $(b,losac stats) \
                   view).")
  in
  let openmetrics =
    Arg.(value & flag
         & info [ "openmetrics" ]
             ~doc:"Print the collected metrics in Prometheus/OpenMetrics \
                   text exposition after the run (implies telemetry \
                   collection).")
  in
  let prof_folded =
    Arg.(value & opt (some string) None
         & info [ "prof-folded" ] ~docv:"FILE"
             ~doc:"Write the profiler's folded call stacks (one \
                   semicolon-joined path and its self time in µs per \
                   line) to $(docv); feed it to flamegraph.pl or \
                   speedscope.  Implies telemetry collection.")
  in
  let setup trace metrics verbose jobs chunk cache backend seed stats
      openmetrics prof_folded =
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level
      (match List.length verbose with
       | 0 -> Some Logs.Warning
       | 1 -> Some Logs.Info
       | _ -> Some Logs.Debug);
    if trace <> None || metrics || openmetrics || prof_folded <> None then
      Obs.Config.set_enabled true;
    Option.iter Par.Pool.set_default_jobs jobs;
    Option.iter Cache.Config.set_enabled cache;
    Option.iter Sim.Stamps.set_default_backend backend;
    { trace; metrics; stats; openmetrics; prof_folded; jobs; chunk; cache;
      backend; seed }
  in
  Term.(const setup $ trace $ metrics $ verbose $ jobs_term $ chunk_term
        $ cache_term $ backend_term $ seed_term $ stats $ openmetrics
        $ prof_folded)

(* The execution context handed to the analyses: one bundle instead of
   loose ?jobs/?cache/?telemetry arguments (see Core.Ctx). *)
let ctx_of ?label tele proc =
  Core.Ctx.make ?jobs:tele.jobs ?chunk:tele.chunk ?cache:tele.cache
    ?backend:tele.backend ?seed:tele.seed ?label proc

(* Emit whatever telemetry the flags requested, after the command ran. *)
let telemetry_finish tele =
  if tele.stats then stats_view ();
  if tele.metrics then begin
    Cache.Memo.export_metrics ();
    Par.Pool.export_metrics ();
    Format.printf "@.telemetry metrics:@.%s" (Obs.Reporter.metrics_table ());
    Format.printf "@.span roll-up:@.%s" (Obs.Reporter.spans_table ());
    Format.printf "@.profile hot spots:@.%s" (Obs.Reporter.prof_table ())
  end;
  if tele.openmetrics then begin
    Cache.Memo.export_metrics ();
    Par.Pool.export_metrics ();
    print_string (Obs.Openmetrics.to_string ())
  end;
  (match tele.prof_folded with
   | Some path ->
     (try
        Obs.Prof.write_folded path;
        Format.printf "wrote folded profile (%d call paths) to %s@."
          (List.length (Obs.Prof.folded ())) path
      with Sys_error msg ->
        Format.eprintf "losac: cannot write folded profile: %s@." msg;
        exit 1)
   | None -> ());
  match tele.trace with
  | Some path ->
    (try
       Obs.Reporter.write_trace path;
       Format.printf "wrote Chrome trace (%d spans) to %s@."
         (Obs.Trace.span_count ()) path
     with Sys_error msg ->
       Format.eprintf "losac: cannot write trace: %s@." msg;
       exit 1)
  | None -> ()

let kind_arg =
  Arg.(value & opt kind_conv Device.Model.Bsim_lite
       & info [ "model" ] ~docv:"KIND" ~doc:"Transistor model (level1 or bsim-lite).")

(* --- output format ---------------------------------------------------- *)

type format = Text | Json

let format_term =
  let doc =
    "Output format: $(b,text) (human-readable, the default) or $(b,json) \
     (the canonical losac.job/1 response document — byte-identical to \
     the same job answered by $(b,losac serve), which is asserted by the \
     test suite)."
  in
  Arg.(value
       & opt (enum [ ("text", Text); ("json", Json) ]) Text
       & info [ "format" ] ~docv:"FMT" ~doc)

(* The one-shot commands and the daemon share the losac.job/1
   request/response structs: in json mode a subcommand builds the same
   Protocol.request a client would send and answers it with the same
   Api.execute the server's executor thread calls. *)
let request_of ?timeout_s ?telemetry tele proc kind spec workload =
  Serve.Protocol.request ?jobs:tele.jobs ?chunk:tele.chunk ?cache:tele.cache
    ?backend:tele.backend ?seed:tele.seed ?timeout_s ?telemetry
    ~proc:proc.Technology.Process.name ~kind ~spec workload

let emit_json tele req =
  let r = Serve.Api.execute req in
  print_string (Serve.Protocol.canonical r);
  print_newline ();
  telemetry_finish tele;
  match r.Serve.Protocol.status with
  | Serve.Protocol.Done -> ()
  | _ -> exit 1

let spec_term =
  let gbw =
    Arg.(value & opt float 65.0
         & info [ "gbw" ] ~docv:"MHZ" ~doc:"Gain-bandwidth target, MHz.")
  in
  let pm =
    Arg.(value & opt float 65.0
         & info [ "pm" ] ~docv:"DEG" ~doc:"Phase margin target, degrees.")
  in
  let cl =
    Arg.(value & opt float 3.0
         & info [ "cl" ] ~docv:"PF" ~doc:"Load capacitance, pF.")
  in
  let vdd =
    Arg.(value & opt float 3.3 & info [ "vdd" ] ~docv:"V" ~doc:"Supply voltage.")
  in
  let build gbw pm cl vdd =
    { Comdiac.Spec.paper_ota with
      Comdiac.Spec.gbw = gbw *. 1e6;
      phase_margin = pm;
      cload = cl *. 1e-12;
      vdd }
  in
  Term.(const build $ gbw $ pm $ cl $ vdd)

(* --- size ----------------------------------------------------------- *)

let size_cmd =
  let topology =
    Arg.(value & opt string "folded-cascode"
         & info [ "topology" ] ~docv:"NAME"
             ~doc:"folded-cascode, two-stage or 5t.")
  in
  let run proc kind spec topology =
    let tb_and_print amp pp_design =
      pp_design ();
      let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
      Format.printf "@.measured performance:@.%a@." Comdiac.Performance.pp
        (Comdiac.Testbench.performance tb)
    in
    let parasitics = Comdiac.Parasitics.single_fold in
    match topology with
    | "folded-cascode" | "fc" ->
      let d = Comdiac.Folded_cascode.size ~proc ~kind ~spec ~parasitics in
      tb_and_print d.Comdiac.Folded_cascode.amp (fun () ->
        Format.printf "%a@." Comdiac.Folded_cascode.pp_design d)
    | "two-stage" | "miller" ->
      let spec = { spec with Comdiac.Spec.icmr = (1.2, 2.1) } in
      let d = Comdiac.Two_stage.size ~proc ~kind ~spec ~parasitics in
      tb_and_print d.Comdiac.Two_stage.amp (fun () ->
        Format.printf "%a@." Comdiac.Two_stage.pp_design d)
    | "5t" | "simple" ->
      let spec = { spec with Comdiac.Spec.icmr = (1.2, 2.1) } in
      let d = Comdiac.Simple_ota.size ~proc ~kind ~spec ~parasitics in
      tb_and_print d.Comdiac.Simple_ota.amp (fun () ->
        Format.printf "%a@." Comdiac.Simple_ota.pp_design d)
    | other -> Format.printf "unknown topology %s@." other
  in
  let run tele format proc kind spec topology =
    match format with
    | Json ->
      emit_json tele
        (request_of tele proc kind spec (Serve.Protocol.Size { topology }))
    | Text ->
      run proc kind spec topology;
      telemetry_finish tele
  in
  let info =
    Cmd.info "size" ~doc:"Size an op-amp and verify it by simulation."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ format_term $ proc_arg $ kind_arg
          $ spec_term $ topology)

(* --- synth ----------------------------------------------------------- *)

let case_conv =
  let parse = function
    | "1" -> Ok Core.Flow.Case1
    | "2" -> Ok Core.Flow.Case2
    | "3" -> Ok Core.Flow.Case3
    | "4" -> Ok Core.Flow.Case4
    | s -> Error (`Msg (Printf.sprintf "case must be 1..4, got %s" s))
  in
  let print fmt c = Format.pp_print_string fmt (Core.Flow.case_label c) in
  Arg.conv (parse, print)

let synth_cmd =
  let case =
    Arg.(value & opt case_conv Core.Flow.Case4
         & info [ "case" ] ~docv:"N"
             ~doc:"Parasitic-awareness case (1..4 as in the paper's Table 1).")
  in
  let run tele format proc kind spec case =
    match format with
    | Json ->
      emit_json tele
        (request_of tele proc kind spec (Serve.Protocol.Synth { case }))
    | Text ->
    let r = Core.Flow.run ~ctx:(ctx_of ~label:"synth" tele proc) ~kind ~spec case in
    Format.printf "%s: %s@." (Core.Flow.case_label case)
      (Core.Flow.case_description case);
    Format.printf "layout-tool calls before convergence: %d (%.1f s total)@."
      r.Core.Flow.layout_calls r.Core.Flow.elapsed;
    (match r.Core.Flow.trajectory with
     | [] -> ()
     | deltas ->
       Format.printf "parasitic convergence trajectory: %s@."
         (String.concat " -> "
            (List.map (fun d -> Printf.sprintf "%.1f%%" (100.0 *. d)) deltas)));
    Format.printf "@.synthesized (extracted):@.%a@." Comdiac.Performance.pp_pair
      (r.Core.Flow.synthesized, r.Core.Flow.extracted);
    telemetry_finish tele
  in
  let info =
    Cmd.info "synth"
      ~doc:"Run the layout-oriented synthesis flow and report synthesized \
            vs extracted performance."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ format_term $ proc_arg $ kind_arg
          $ spec_term $ case)

(* --- layout ----------------------------------------------------------- *)

let layout_cmd =
  let svg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write the layout as SVG.")
  in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Print an ASCII rendering.")
  in
  let run tele proc kind spec svg ascii =
    let r = Core.Flow.run ~ctx:(ctx_of ~label:"layout" tele proc) ~kind ~spec Core.Flow.Case4 in
    let report = r.Core.Flow.report in
    Format.printf "floorplan %d x %d lambda@."
      report.Cairo_layout.Plan.total_w report.Cairo_layout.Plan.total_h;
    List.iter
      (fun (name, style) ->
        Format.printf "  %-5s nf = %d@." name style.Device.Folding.nf)
      report.Cairo_layout.Plan.device_styles;
    (match report.Cairo_layout.Plan.cell with
     | None -> ()
     | Some cell ->
       (match svg with
        | Some path ->
          Out_channel.with_open_text path (fun oc ->
            output_string oc (Cairo_layout.Render.svg cell));
          Format.printf "wrote %s@." path
        | None -> ());
       if ascii then
         Format.printf "%s@.%s@." Cairo_layout.Render.legend
           (Cairo_layout.Render.ascii ~max_cols:110 cell));
    telemetry_finish tele
  in
  let info = Cmd.info "layout" ~doc:"Generate and render the case-4 layout." in
  Cmd.v info
    Term.(const run $ telemetry_term $ proc_arg $ kind_arg $ spec_term $ svg
          $ ascii)

(* --- verify ----------------------------------------------------------- *)

let verify_cmd =
  let samples =
    Arg.(value & opt int 30
         & info [ "samples" ] ~docv:"N" ~doc:"Monte Carlo sample count.")
  in
  let run tele format proc kind spec samples =
    match format with
    | Json ->
      emit_json tele
        (request_of tele proc kind spec
           (Serve.Protocol.Verify
              { samples; seed = Exec.Ctx.seed ?override:tele.seed None }))
    | Text ->
    let ctx = ctx_of ~label:"verify" tele proc in
    let design =
      Comdiac.Folded_cascode.size ~proc ~kind ~spec
        ~parasitics:Comdiac.Parasitics.single_fold
    in
    let amp = design.Comdiac.Folded_cascode.amp in
    let mc = Comdiac.Montecarlo.run ~n:samples ~ctx ~kind ~spec amp in
    Format.printf "%a@.@." Comdiac.Montecarlo.pp mc;
    let rebias p = Comdiac.Folded_cascode.rebias ~proc:p ~kind ~spec design in
    let rob = Comdiac.Robustness.run ~rebias ~ctx ~kind ~spec amp in
    Format.printf "%a@.@." Comdiac.Robustness.pp rob;
    let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
    Format.printf "PSRR %.1f dB@." (Sim.Measure.db (Comdiac.Testbench.psrr tb));
    let lo, hi = Comdiac.Testbench.common_mode_range tb in
    Format.printf "input common-mode range [%.2f, %.2f] V@." lo hi;
    telemetry_finish tele
  in
  let info =
    Cmd.info "verify"
      ~doc:"Statistical (mismatch Monte Carlo) and corner/temperature             verification of the sized amplifier."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ format_term $ proc_arg $ kind_arg
          $ spec_term $ samples)

(* --- optimize --------------------------------------------------------- *)

let strategy_conv =
  let parse s =
    match Opt.Search.strategy_of_string s with
    | Some _ -> Ok s
    | None ->
      Error (`Msg (Printf.sprintf "unknown strategy %s (nm|anneal)" s))
  in
  Arg.conv (parse, Format.pp_print_string)

let starts_arg =
  Arg.(value & opt int 6
       & info [ "starts" ] ~docv:"N"
           ~doc:"Independent multi-start searches; start $(i,i) draws only \
                 from SplitMix64 stream (seed, $(i,i)), so results are \
                 bit-identical at any $(b,--jobs) count.")

let budget_arg =
  Arg.(value & opt int 480
       & info [ "budget" ] ~docv:"N"
           ~doc:"Total coarse-tier evaluation budget, split across the \
                 starts.")

let strategy_arg =
  Arg.(value & opt strategy_conv "nm"
       & info [ "strategy" ] ~docv:"NAME"
           ~doc:"Per-start search strategy: $(b,nm) (Nelder-Mead simplex \
                 on the candidate lattice) or $(b,anneal) (simulated \
                 annealing fallback for non-smooth regions).")

let lut_arg =
  Arg.(value
       & vflag true
           [ (true,
              info [ "lut" ]
                ~doc:"Run the coarse tier on Device.Lut interpolated \
                      grids (the default; about an order of magnitude \
                      cheaper per candidate).  The final front is exact \
                      either way: survivors are re-verified in the \
                      simulator.");
             (false,
              info [ "no-lut" ]
                ~doc:"Run the coarse tier on exact device models.") ])

let optimize_cmd =
  let run tele format proc kind spec starts budget strategy lut =
    match format with
    | Json ->
      emit_json tele
        (request_of tele proc kind spec
           (Serve.Protocol.Optimize { starts; budget; strategy; lut }))
    | Text ->
      let ctx = ctx_of ~label:"optimize" tele proc in
      let strategy =
        match Opt.Search.strategy_of_string strategy with
        | Some s -> s
        | None -> Opt.Search.Nelder_mead
      in
      let res = Opt.Search.run ~ctx ~starts ~budget ~strategy ~lut ~kind ~spec () in
      Format.printf "%a@." Opt.Search.pp res;
      (match res.Opt.Search.best_performance with
       | Some p ->
         Format.printf "@.measured performance of best:@.%a@."
           Comdiac.Performance.pp p
       | None -> ());
      telemetry_finish tele
  in
  let info =
    Cmd.info "optimize"
      ~doc:"Multi-start optimization over sizing-plan inputs: a cheap \
            LUT-interpolated coarse tier explores, a deterministic \
            exact-plan polish refines each start, and only the surviving \
            winners are re-verified in the simulator.  Deterministic for \
            a given $(b,--seed) at any $(b,--jobs) count."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ format_term $ proc_arg $ kind_arg
          $ spec_term $ starts_arg $ budget_arg $ strategy_arg $ lut_arg)

(* --- stats ----------------------------------------------------------- *)

let stats_cmd =
  let samples =
    Arg.(value & opt int 50
         & info [ "samples" ] ~docv:"N" ~doc:"Monte Carlo sample count.")
  in
  let repeat =
    Arg.(value & opt int 2
         & info [ "repeat" ] ~docv:"K"
             ~doc:"Run the workload $(docv) times; from the second \
                   iteration on, the coarse memo caches should answer \
                   nearly every sample and corner point.  0 skips the \
                   workload and just prints the (empty) view.")
  in
  let run tele format proc kind spec samples repeat =
    (* the whole point of this subcommand is the observability view, so
       collect telemetry even without an explicit --metrics *)
    Obs.Config.set_enabled true;
    let ctx = ctx_of ~label:"stats" tele proc in
    (* --repeat 0 skips the demo workload entirely: the view (and the
       json snapshot) then reports a never-started pool and empty
       caches, which must render cleanly too. *)
    if repeat > 0 then begin
      let design =
        Comdiac.Folded_cascode.size ~proc ~kind ~spec
          ~parasitics:Comdiac.Parasitics.single_fold
      in
      let amp = design.Comdiac.Folded_cascode.amp in
      for i = 1 to repeat do
        let t0 = Obs.Clock.monotonic_s () in
        ignore (Comdiac.Montecarlo.run ~n:samples ~ctx ~kind ~spec amp);
        ignore (Comdiac.Robustness.run ~ctx ~kind ~spec amp);
        if format = Text then
          Format.printf "run %d: monte carlo (n=%d) + corner sweep in %.2f s@."
            i samples
            (Obs.Clock.monotonic_s () -. t0)
      done
    end;
    match format with
    | Json -> emit_json tele (request_of tele proc kind spec Serve.Protocol.Stats)
    | Text ->
      stats_view ();
      telemetry_finish tele
  in
  let info =
    Cmd.info "stats"
      ~doc:"Run a Monte Carlo + corner-sweep workload and print the cache \
            hit/miss/eviction and domain-pool statistics.  Use \
            $(b,--no-cache) to compare against the cold path; any other \
            subcommand accepts $(b,--stats) to print the same view."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ format_term $ proc_arg $ kind_arg
          $ spec_term $ samples $ repeat)

(* --- tech ----------------------------------------------------------- *)

let tech_cmd =
  let run tele format =
    match format with
    | Json -> emit_json tele (Serve.Protocol.request Serve.Protocol.Tech)
    | Text ->
      List.iter
        (fun p ->
          Format.printf "%a@.@." Technology.Process.pp_evaluation
            (Technology.Process.evaluate p))
        Technology.Process.builtin
  in
  let info = Cmd.info "tech" ~doc:"Characterise the built-in technologies." in
  Cmd.v info Term.(const run $ telemetry_term $ format_term)

(* --- serve ----------------------------------------------------------- *)

let hostport_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected HOST:PORT")
    | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
       | Some p when p > 0 && p < 65536 -> Ok (host, p)
       | _ -> Error (`Msg (Printf.sprintf "bad port %S" port)))
  in
  let print fmt (h, p) = Format.fprintf fmt "%s:%d" h p in
  Arg.conv (parse, print)

let socket_arg =
  Arg.(value & opt string "losac.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~env:(Cmd.Env.info "LOSAC_SOCKET")
           ~doc:"Unix-domain socket path of the job daemon.")

let tcp_arg =
  Arg.(value & opt (some hostport_conv) None
       & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"TCP address of the job daemon.")

let serve_cmd =
  let queue_limit =
    Arg.(value & opt int 64
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"Admission bound: submissions beyond $(docv) queued \
                   jobs are rejected with status $(b,overloaded).")
  in
  let max_frame =
    Arg.(value & opt int Serve.Frame.max_frame_default
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Per-frame payload cap; oversized frames close the \
                   connection.")
  in
  let job_timeout =
    Arg.(value & opt (some float) None
         & info [ "job-timeout" ] ~docv:"SEC"
             ~doc:"Default cooperative deadline applied to jobs that \
                   carry no timeout of their own.")
  in
  let executors =
    Arg.(value & opt int (Serve.Server.default_executors ())
         & info [ "executors" ] ~docv:"N"
             ~doc:"Concurrent executor domains (default min(4, cores)): \
                   up to $(docv) jobs run at once, each with its own \
                   context-local cache/backend/telemetry flags, sharing \
                   the domain pool and warm memo caches.")
  in
  let run tele socket tcp queue_limit max_frame job_timeout executors =
    Format.printf "losac: serving on %s%s (queue limit %d, %d executor(s))@."
      socket
      (match tcp with
       | Some (h, p) -> Printf.sprintf " and %s:%d" h p
       | None -> "")
      queue_limit
      (max 1 (min 16 executors));
    Format.print_flush ();
    let served =
      Serve.Server.run
        {
          Serve.Server.socket_path = Some socket;
          tcp;
          queue_limit;
          max_frame;
          default_timeout_s = job_timeout;
          executors;
        }
    in
    Format.printf "losac: drained, served %d job(s)@." served;
    telemetry_finish tele
  in
  let info =
    Cmd.info "serve"
      ~doc:"Run the synthesis job daemon: accept losac.job/1 requests \
            over a Unix-domain (and optionally TCP) socket, execute them \
            on N concurrent executor domains sharing the domain pool and \
            the process-wide memo caches (kept warm across requests), \
            and drain gracefully on SIGTERM/SIGINT."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ socket_arg $ tcp_arg $ queue_limit
          $ max_frame $ job_timeout $ executors)

(* --- job -------------------------------------------------------------- *)

let job_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD"
             ~doc:"One of ping, sleep, tech, stats, size, synth, mc, \
                   corners, verify, optimize, cancel.")
  in
  let target =
    Arg.(value & opt int 0
         & info [ "target" ] ~docv:"ID"
             ~doc:"Job id to cancel, for $(b,cancel).  Cancellation is \
                   connection-scoped: only jobs submitted on the same \
                   connection can be reached, so this standalone form \
                   mostly exercises the wire path — prefer \
                   $(b,--cancel-after) to cancel a job this command \
                   itself submitted.")
  in
  let cancel_after =
    Arg.(value & opt (some float) None
         & info [ "cancel-after" ] ~docv:"SEC"
             ~doc:"After submitting the job, wait $(docv) seconds and \
                   send a $(b,cancel) for it on the same connection; \
                   print the cancel acknowledgement on stderr and the \
                   job's final response (normally status \
                   $(b,cancelled)) on stdout.")
  in
  let case =
    Arg.(value & opt case_conv Core.Flow.Case4
         & info [ "case" ] ~docv:"N" ~doc:"Flow case for $(b,synth) (1..4).")
  in
  let topology =
    Arg.(value & opt string "folded-cascode"
         & info [ "topology" ] ~docv:"NAME" ~doc:"Topology for $(b,size).")
  in
  let n =
    Arg.(value & opt int 50
         & info [ "n"; "count" ] ~docv:"N" ~doc:"Sample count for $(b,mc).")
  in
  let samples =
    Arg.(value & opt int 30
         & info [ "samples" ] ~docv:"N"
             ~doc:"Monte Carlo sample count for $(b,verify).")
  in
  let seconds =
    Arg.(value & opt float 0.1
         & info [ "seconds" ] ~docv:"SEC" ~doc:"Duration of $(b,sleep).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SEC"
             ~doc:"Cooperative job deadline; exceeding it fails the job \
                   with a $(b,timeout) error.")
  in
  let telemetry =
    Arg.(value & flag
         & info [ "telemetry" ]
             ~doc:"Ask the server to stream a telemetry event (cache and \
                   pool snapshot) before the result.")
  in
  let canonical =
    Arg.(value & flag
         & info [ "canonical" ]
             ~doc:"Print the canonical (meta-stripped) response form, \
                   byte-identical to the same subcommand run with \
                   $(b,--format json).")
  in
  let show_events =
    Arg.(value & flag
         & info [ "show-events" ]
             ~doc:"Print interleaved ack/started/telemetry events to \
                   stderr as they arrive.")
  in
  let run tele proc kind spec workload case topology n samples seconds starts
      budget strategy lut timeout telemetry socket tcp canonical show_events
      target cancel_after =
    (* mc/verify carry their seed as a workload field; it resolves exactly
       like Exec.Ctx.seed does (--seed > LOSAC_SEED > 42) so a served mc
       and [losac verify --format json] agree. *)
    let seed = Exec.Ctx.seed ?override:tele.seed None in
    let workload =
      match workload with
      | "ping" -> Ok Serve.Protocol.Ping
      | "sleep" -> Ok (Serve.Protocol.Sleep { seconds })
      | "tech" -> Ok Serve.Protocol.Tech
      | "stats" -> Ok Serve.Protocol.Stats
      | "synth" -> Ok (Serve.Protocol.Synth { case })
      | "size" -> Ok (Serve.Protocol.Size { topology })
      | "mc" -> Ok (Serve.Protocol.Mc { n; seed })
      | "corners" -> Ok Serve.Protocol.Corners
      | "verify" -> Ok (Serve.Protocol.Verify { samples; seed })
      | "optimize" ->
        Ok (Serve.Protocol.Optimize { starts; budget; strategy; lut })
      | "cancel" -> Ok (Serve.Protocol.Cancel { target })
      | other -> Error other
    in
    match workload with
    | Error other ->
      Format.eprintf "losac: unknown workload %s@." other;
      exit 2
    | Ok workload ->
      let req =
        request_of ?timeout_s:timeout ~telemetry tele proc kind spec workload
      in
      let client =
        match tcp with
        | Some (host, port) -> Serve.Client.connect_tcp ~host ~port ()
        | None -> Serve.Client.connect socket
      in
      let on_event e =
        if show_events then
          Format.eprintf "%s@."
            (Obs.Json.to_string (Serve.Protocol.event_to_json e))
      in
      let r =
        match cancel_after with
        | None -> Serve.Client.call ~on_event client req
        | Some delay ->
          (* Same-connection cancellation round-trip: submit, wait, send
             the cancel, read its acknowledgement, then the job's final
             (a cancel answer always overtakes the job it targets). *)
          Serve.Client.submit client req;
          Unix.sleepf delay;
          let cancel_req =
            Serve.Protocol.request
              ~id:(req.Serve.Protocol.id + 1)
              (Serve.Protocol.Cancel { target = req.Serve.Protocol.id })
          in
          Serve.Client.submit client cancel_req;
          let ack =
            Serve.Client.await ~on_event client cancel_req.Serve.Protocol.id
          in
          Format.eprintf "%s@."
            (Obs.Json.to_string (Serve.Protocol.response_to_json ack));
          Serve.Client.await ~on_event client req.Serve.Protocol.id
      in
      Serve.Client.close client;
      print_string
        (if canonical then Serve.Protocol.canonical r
         else Obs.Json.to_string (Serve.Protocol.response_to_json r));
      print_newline ();
      (match r.Serve.Protocol.status with
       | Serve.Protocol.Done -> ()
       | Serve.Protocol.Cancelled -> exit 3
       | _ -> exit 1)
  in
  let info =
    Cmd.info "job"
      ~doc:"Submit one job to a running $(b,losac serve) daemon and print \
            its response.  Exit status: 0 on success, 3 when the job \
            ended $(b,cancelled), 1 on any other failure."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ proc_arg $ kind_arg $ spec_term
          $ workload_arg $ case $ topology $ n $ samples $ seconds
          $ starts_arg $ budget_arg $ strategy_arg $ lut_arg
          $ timeout $ telemetry $ socket_arg $ tcp_arg $ canonical
          $ show_events $ target $ cancel_after)

let () =
  let info =
    Cmd.info "losac" ~version:"1.0.0"
      ~doc:"Layout-oriented synthesis of high performance analog circuits."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ size_cmd; synth_cmd; layout_cmd; verify_cmd; optimize_cmd;
            stats_cmd; tech_cmd; serve_cmd; job_cmd ]))

(* losac - layout-oriented synthesis of analog circuits.

   Subcommands:
     losac size   - size an op-amp and verify it by simulation
     losac synth  - run the layout-oriented flow (Table-1 cases)
     losac layout - generate and render the layout of a synthesis run
     losac tech   - characterise the built-in technologies *)

open Cmdliner

let proc_conv =
  let parse s =
    match Technology.Process.find s with
    | p -> Ok p
    | exception Not_found ->
      Error
        (`Msg
           (Printf.sprintf "unknown technology %s (have: %s)" s
              (String.concat ", "
                 (List.map
                    (fun p -> p.Technology.Process.name)
                    Technology.Process.builtin))))
  in
  let print fmt p = Format.pp_print_string fmt p.Technology.Process.name in
  Arg.conv (parse, print)

let kind_conv =
  let parse = function
    | "level1" -> Ok Device.Model.Level1
    | "bsim-lite" | "bsim" -> Ok Device.Model.Bsim_lite
    | s -> Error (`Msg (Printf.sprintf "unknown model %s (level1|bsim-lite)" s))
  in
  let print fmt k = Format.pp_print_string fmt (Device.Model.kind_to_string k) in
  Arg.conv (parse, print)

let proc_arg =
  Arg.(value & opt proc_conv Technology.Process.c06
       & info [ "tech" ] ~docv:"NAME" ~doc:"Technology (c06 or c035).")

(* --- parallelism ------------------------------------------------------ *)

let jobs_term =
  let doc =
    "Worker domains for parallel sections (Monte Carlo sampling, \
     corner/temperature sweeps, multi-case synthesis).  Results are \
     bit-identical whatever the value; 1 disables parallelism.  Defaults \
     to the machine's recommended domain count."
  in
  Arg.(value
       & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "LOSAC_JOBS") ~doc)

let chunk_term =
  let doc =
    "Items per pool chunk for parallel sections.  Defaults to a \
     cost-aware adaptive size; pinning it makes chunk boundaries (and \
     hence per-chunk telemetry) reproducible across runs.  Results are \
     bit-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)

(* --- solver backend --------------------------------------------------- *)

let backend_conv =
  let parse s =
    match Sim.Stamps.backend_of_string s with
    | Ok b -> Ok b
    | Error msg -> Error (`Msg msg)
  in
  let print fmt b = Format.pp_print_string fmt (Sim.Stamps.backend_name b) in
  Arg.conv (parse, print)

let backend_term =
  let doc =
    "Linear-solver backend for every analysis: $(b,kernel) (dense unboxed \
     in-place LU, the default), $(b,reference) (boxed functor solver), \
     $(b,sparse) (CSR LU with fill-reducing minimum-degree ordering and \
     symbolic/numeric split — fastest on large circuits) or \
     $(b,sparse-natural) (sparse with the dense pivoting rule, \
     bit-identical to $(b,kernel)).  Overrides the $(b,LOSAC_BACKEND) \
     environment variable."
  in
  Arg.(value
       & opt (some backend_conv) None
       & info [ "backend" ] ~docv:"NAME"
           ~env:(Cmd.Env.info "LOSAC_BACKEND") ~doc)

(* --- caching ---------------------------------------------------------- *)

let cache_term =
  let doc_on =
    "Enable the content-addressed memo caches (device operating points, \
     layout variant generation, parasitic plans, Monte Carlo samples, \
     corner points).  This is the default; results are bit-identical \
     with caching on or off.  Overrides the $(b,LOSAC_CACHE) environment \
     variable."
  in
  let doc_off = "Disable the memo caches (cold run every time)." in
  Arg.(value
       & vflag None
           [ (Some true, info [ "cache" ] ~doc:doc_on);
             (Some false, info [ "no-cache" ] ~doc:doc_off) ])

(* The cache hit/miss/eviction table plus domain-pool utilization, the
   simulator latency quantiles and the profiler hot spots — the
   [losac stats] view, also available as --stats after any command. *)
let stats_view () =
  let caches = Cache.Memo.registry () in
  Format.printf "@.cache statistics:@.";
  if caches = [] then Format.printf "  (no caches created)@.";
  List.iter
    (fun (s : Cache.Memo.stats) ->
      Format.printf
        "  %-22s %8d hits %8d misses %6d evictions  %5.1f%% hit rate  \
         %d/%d entries@."
        s.Cache.Memo.name s.Cache.Memo.hits s.Cache.Memo.misses
        s.Cache.Memo.evictions
        (100.0 *. Cache.Memo.hit_rate s)
        s.Cache.Memo.entries s.Cache.Memo.capacity)
    caches;
  if Device.Lut.tables_built () > 0 then
    Format.printf "  %d operating-point LUT grid(s) built@."
      (Device.Lut.tables_built ());
  Format.printf "pool: %d worker domain(s), queue depth %d@."
    (Par.Pool.num_workers ()) (Par.Pool.queue_depth ());
  (match Par.Pool.worker_stats () with
   | [] -> ()
   | workers ->
     Format.printf "  %-8s %-7s %8s %12s %12s %6s %7s %8s %6s %9s@." "domain"
       "role" "tasks" "busy ms" "wait ms" "busy%" "steals" "attempts" "spins"
       "warmup ms";
     List.iter
       (fun (w : Par.Pool.worker_stat) ->
         Format.printf
           "  %-8d %-7s %8d %12.3f %12.3f %5.1f%% %7d %8d %6d %9.3f@."
           w.Par.Pool.ws_domain w.Par.Pool.ws_role w.Par.Pool.ws_tasks
           (w.Par.Pool.ws_busy_us /. 1e3)
           (w.Par.Pool.ws_wait_us /. 1e3)
           (100.0 *. w.Par.Pool.ws_busy_frac)
           w.Par.Pool.ws_steals w.Par.Pool.ws_steal_attempts
           w.Par.Pool.ws_steal_spins
           (w.Par.Pool.ws_warmup_us /. 1e3))
       workers);
  let sim_hists =
    List.filter
      (fun n -> String.length n > 4 && String.sub n 0 4 = "sim.")
      (Obs.Metrics.hist_names ())
  in
  if sim_hists <> [] then begin
    Format.printf "@.simulator latency quantiles:@.";
    List.iter
      (fun n ->
        match Obs.Metrics.hist_stats n with
        | None -> ()
        | Some s ->
          Format.printf
            "  %-24s n=%-7d p50 %10.1f  p90 %10.1f  p99 %10.1f  max %10.1f@."
            n s.Obs.Metrics.count s.Obs.Metrics.p50 s.Obs.Metrics.p90
            s.Obs.Metrics.p99 s.Obs.Metrics.max)
      sim_hists
  end;
  if Obs.Prof.sites () <> [] then
    Format.printf "@.profile hot spots:@.%s" (Obs.Reporter.prof_table ())

(* --- telemetry and logging ------------------------------------------- *)

type telemetry = {
  trace : string option;
  metrics : bool;
  stats : bool;
  openmetrics : bool;
  prof_folded : string option;
  jobs : int option;
  chunk : int option;
  cache : bool option;
  backend : Sim.Stamps.backend option;
}

let telemetry_term =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON trace of the run to \
                   $(docv); open it in chrome://tracing or \
                   https://ui.perfetto.dev.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect telemetry and print the metrics table (Newton \
                   iteration totals, layout-call counts, parasitic \
                   convergence deltas, ...) after the run.")
  in
  let verbose =
    Arg.(value & flag_all
         & info [ "v"; "verbose" ]
             ~doc:"Increase log verbosity; repeatable ($(b,-v) info, \
                   $(b,-vv) debug).  Warnings (e.g. Newton \
                   divergence-and-retry) print by default.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the cache hit/miss/eviction table and the domain \
                   pool counters after the run (the $(b,losac stats) \
                   view).")
  in
  let openmetrics =
    Arg.(value & flag
         & info [ "openmetrics" ]
             ~doc:"Print the collected metrics in Prometheus/OpenMetrics \
                   text exposition after the run (implies telemetry \
                   collection).")
  in
  let prof_folded =
    Arg.(value & opt (some string) None
         & info [ "prof-folded" ] ~docv:"FILE"
             ~doc:"Write the profiler's folded call stacks (one \
                   semicolon-joined path and its self time in µs per \
                   line) to $(docv); feed it to flamegraph.pl or \
                   speedscope.  Implies telemetry collection.")
  in
  let setup trace metrics verbose jobs chunk cache backend stats openmetrics
      prof_folded =
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level
      (match List.length verbose with
       | 0 -> Some Logs.Warning
       | 1 -> Some Logs.Info
       | _ -> Some Logs.Debug);
    if trace <> None || metrics || openmetrics || prof_folded <> None then
      Obs.Config.set_enabled true;
    Option.iter Par.Pool.set_default_jobs jobs;
    Option.iter Cache.Config.set_enabled cache;
    Option.iter Sim.Stamps.set_default_backend backend;
    { trace; metrics; stats; openmetrics; prof_folded; jobs; chunk; cache;
      backend }
  in
  Term.(const setup $ trace $ metrics $ verbose $ jobs_term $ chunk_term
        $ cache_term $ backend_term $ stats $ openmetrics $ prof_folded)

(* The execution context handed to the analyses: one bundle instead of
   loose ?jobs/?cache/?telemetry arguments (see Core.Ctx). *)
let ctx_of ?label tele proc =
  Core.Ctx.make ?jobs:tele.jobs ?chunk:tele.chunk ?cache:tele.cache
    ?backend:tele.backend ?label proc

(* Emit whatever telemetry the flags requested, after the command ran. *)
let telemetry_finish tele =
  if tele.stats then stats_view ();
  if tele.metrics then begin
    Cache.Memo.export_metrics ();
    Par.Pool.export_metrics ();
    Format.printf "@.telemetry metrics:@.%s" (Obs.Reporter.metrics_table ());
    Format.printf "@.span roll-up:@.%s" (Obs.Reporter.spans_table ());
    Format.printf "@.profile hot spots:@.%s" (Obs.Reporter.prof_table ())
  end;
  if tele.openmetrics then begin
    Cache.Memo.export_metrics ();
    Par.Pool.export_metrics ();
    print_string (Obs.Openmetrics.to_string ())
  end;
  (match tele.prof_folded with
   | Some path ->
     (try
        Obs.Prof.write_folded path;
        Format.printf "wrote folded profile (%d call paths) to %s@."
          (List.length (Obs.Prof.folded ())) path
      with Sys_error msg ->
        Format.eprintf "losac: cannot write folded profile: %s@." msg;
        exit 1)
   | None -> ());
  match tele.trace with
  | Some path ->
    (try
       Obs.Reporter.write_trace path;
       Format.printf "wrote Chrome trace (%d spans) to %s@."
         (Obs.Trace.span_count ()) path
     with Sys_error msg ->
       Format.eprintf "losac: cannot write trace: %s@." msg;
       exit 1)
  | None -> ()

let kind_arg =
  Arg.(value & opt kind_conv Device.Model.Bsim_lite
       & info [ "model" ] ~docv:"KIND" ~doc:"Transistor model (level1 or bsim-lite).")

let spec_term =
  let gbw =
    Arg.(value & opt float 65.0
         & info [ "gbw" ] ~docv:"MHZ" ~doc:"Gain-bandwidth target, MHz.")
  in
  let pm =
    Arg.(value & opt float 65.0
         & info [ "pm" ] ~docv:"DEG" ~doc:"Phase margin target, degrees.")
  in
  let cl =
    Arg.(value & opt float 3.0
         & info [ "cl" ] ~docv:"PF" ~doc:"Load capacitance, pF.")
  in
  let vdd =
    Arg.(value & opt float 3.3 & info [ "vdd" ] ~docv:"V" ~doc:"Supply voltage.")
  in
  let build gbw pm cl vdd =
    { Comdiac.Spec.paper_ota with
      Comdiac.Spec.gbw = gbw *. 1e6;
      phase_margin = pm;
      cload = cl *. 1e-12;
      vdd }
  in
  Term.(const build $ gbw $ pm $ cl $ vdd)

(* --- size ----------------------------------------------------------- *)

let size_cmd =
  let topology =
    Arg.(value & opt string "folded-cascode"
         & info [ "topology" ] ~docv:"NAME"
             ~doc:"folded-cascode, two-stage or 5t.")
  in
  let run proc kind spec topology =
    let tb_and_print amp pp_design =
      pp_design ();
      let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
      Format.printf "@.measured performance:@.%a@." Comdiac.Performance.pp
        (Comdiac.Testbench.performance tb)
    in
    let parasitics = Comdiac.Parasitics.single_fold in
    match topology with
    | "folded-cascode" | "fc" ->
      let d = Comdiac.Folded_cascode.size ~proc ~kind ~spec ~parasitics in
      tb_and_print d.Comdiac.Folded_cascode.amp (fun () ->
        Format.printf "%a@." Comdiac.Folded_cascode.pp_design d)
    | "two-stage" | "miller" ->
      let spec = { spec with Comdiac.Spec.icmr = (1.2, 2.1) } in
      let d = Comdiac.Two_stage.size ~proc ~kind ~spec ~parasitics in
      tb_and_print d.Comdiac.Two_stage.amp (fun () ->
        Format.printf "%a@." Comdiac.Two_stage.pp_design d)
    | "5t" | "simple" ->
      let spec = { spec with Comdiac.Spec.icmr = (1.2, 2.1) } in
      let d = Comdiac.Simple_ota.size ~proc ~kind ~spec ~parasitics in
      tb_and_print d.Comdiac.Simple_ota.amp (fun () ->
        Format.printf "%a@." Comdiac.Simple_ota.pp_design d)
    | other -> Format.printf "unknown topology %s@." other
  in
  let run tele proc kind spec topology =
    run proc kind spec topology;
    telemetry_finish tele
  in
  let info =
    Cmd.info "size" ~doc:"Size an op-amp and verify it by simulation."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ proc_arg $ kind_arg $ spec_term $ topology)

(* --- synth ----------------------------------------------------------- *)

let case_conv =
  let parse = function
    | "1" -> Ok Core.Flow.Case1
    | "2" -> Ok Core.Flow.Case2
    | "3" -> Ok Core.Flow.Case3
    | "4" -> Ok Core.Flow.Case4
    | s -> Error (`Msg (Printf.sprintf "case must be 1..4, got %s" s))
  in
  let print fmt c = Format.pp_print_string fmt (Core.Flow.case_label c) in
  Arg.conv (parse, print)

let synth_cmd =
  let case =
    Arg.(value & opt case_conv Core.Flow.Case4
         & info [ "case" ] ~docv:"N"
             ~doc:"Parasitic-awareness case (1..4 as in the paper's Table 1).")
  in
  let run tele proc kind spec case =
    let r = Core.Flow.run ~ctx:(ctx_of ~label:"synth" tele proc) ~kind ~spec case in
    Format.printf "%s: %s@." (Core.Flow.case_label case)
      (Core.Flow.case_description case);
    Format.printf "layout-tool calls before convergence: %d (%.1f s total)@."
      r.Core.Flow.layout_calls r.Core.Flow.elapsed;
    (match r.Core.Flow.trajectory with
     | [] -> ()
     | deltas ->
       Format.printf "parasitic convergence trajectory: %s@."
         (String.concat " -> "
            (List.map (fun d -> Printf.sprintf "%.1f%%" (100.0 *. d)) deltas)));
    Format.printf "@.synthesized (extracted):@.%a@." Comdiac.Performance.pp_pair
      (r.Core.Flow.synthesized, r.Core.Flow.extracted);
    telemetry_finish tele
  in
  let info =
    Cmd.info "synth"
      ~doc:"Run the layout-oriented synthesis flow and report synthesized \
            vs extracted performance."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ proc_arg $ kind_arg $ spec_term $ case)

(* --- layout ----------------------------------------------------------- *)

let layout_cmd =
  let svg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write the layout as SVG.")
  in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Print an ASCII rendering.")
  in
  let run tele proc kind spec svg ascii =
    let r = Core.Flow.run ~ctx:(ctx_of ~label:"layout" tele proc) ~kind ~spec Core.Flow.Case4 in
    let report = r.Core.Flow.report in
    Format.printf "floorplan %d x %d lambda@."
      report.Cairo_layout.Plan.total_w report.Cairo_layout.Plan.total_h;
    List.iter
      (fun (name, style) ->
        Format.printf "  %-5s nf = %d@." name style.Device.Folding.nf)
      report.Cairo_layout.Plan.device_styles;
    (match report.Cairo_layout.Plan.cell with
     | None -> ()
     | Some cell ->
       (match svg with
        | Some path ->
          Out_channel.with_open_text path (fun oc ->
            output_string oc (Cairo_layout.Render.svg cell));
          Format.printf "wrote %s@." path
        | None -> ());
       if ascii then
         Format.printf "%s@.%s@." Cairo_layout.Render.legend
           (Cairo_layout.Render.ascii ~max_cols:110 cell));
    telemetry_finish tele
  in
  let info = Cmd.info "layout" ~doc:"Generate and render the case-4 layout." in
  Cmd.v info
    Term.(const run $ telemetry_term $ proc_arg $ kind_arg $ spec_term $ svg
          $ ascii)

(* --- verify ----------------------------------------------------------- *)

let verify_cmd =
  let samples =
    Arg.(value & opt int 30
         & info [ "samples" ] ~docv:"N" ~doc:"Monte Carlo sample count.")
  in
  let run tele proc kind spec samples =
    let ctx = ctx_of ~label:"verify" tele proc in
    let design =
      Comdiac.Folded_cascode.size ~proc ~kind ~spec
        ~parasitics:Comdiac.Parasitics.single_fold
    in
    let amp = design.Comdiac.Folded_cascode.amp in
    let mc = Comdiac.Montecarlo.run ~n:samples ~ctx ~kind ~spec amp in
    Format.printf "%a@.@." Comdiac.Montecarlo.pp mc;
    let rebias p = Comdiac.Folded_cascode.rebias ~proc:p ~kind ~spec design in
    let rob = Comdiac.Robustness.run ~rebias ~ctx ~kind ~spec amp in
    Format.printf "%a@.@." Comdiac.Robustness.pp rob;
    let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
    Format.printf "PSRR %.1f dB@." (Sim.Measure.db (Comdiac.Testbench.psrr tb));
    let lo, hi = Comdiac.Testbench.common_mode_range tb in
    Format.printf "input common-mode range [%.2f, %.2f] V@." lo hi;
    telemetry_finish tele
  in
  let info =
    Cmd.info "verify"
      ~doc:"Statistical (mismatch Monte Carlo) and corner/temperature             verification of the sized amplifier."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ proc_arg $ kind_arg $ spec_term $ samples)

(* --- stats ----------------------------------------------------------- *)

let stats_cmd =
  let samples =
    Arg.(value & opt int 50
         & info [ "samples" ] ~docv:"N" ~doc:"Monte Carlo sample count.")
  in
  let repeat =
    Arg.(value & opt int 2
         & info [ "repeat" ] ~docv:"K"
             ~doc:"Run the workload $(docv) times; from the second \
                   iteration on, the coarse memo caches should answer \
                   nearly every sample and corner point.")
  in
  let run tele proc kind spec samples repeat =
    (* the whole point of this subcommand is the observability view, so
       collect telemetry even without an explicit --metrics *)
    Obs.Config.set_enabled true;
    let ctx = ctx_of ~label:"stats" tele proc in
    let design =
      Comdiac.Folded_cascode.size ~proc ~kind ~spec
        ~parasitics:Comdiac.Parasitics.single_fold
    in
    let amp = design.Comdiac.Folded_cascode.amp in
    for i = 1 to max 1 repeat do
      let t0 = Obs.Clock.monotonic_s () in
      ignore (Comdiac.Montecarlo.run ~n:samples ~ctx ~kind ~spec amp);
      ignore (Comdiac.Robustness.run ~ctx ~kind ~spec amp);
      Format.printf "run %d: monte carlo (n=%d) + corner sweep in %.2f s@."
        i samples
        (Obs.Clock.monotonic_s () -. t0)
    done;
    stats_view ();
    telemetry_finish tele
  in
  let info =
    Cmd.info "stats"
      ~doc:"Run a Monte Carlo + corner-sweep workload and print the cache \
            hit/miss/eviction and domain-pool statistics.  Use \
            $(b,--no-cache) to compare against the cold path; any other \
            subcommand accepts $(b,--stats) to print the same view."
  in
  Cmd.v info
    Term.(const run $ telemetry_term $ proc_arg $ kind_arg $ spec_term
          $ samples $ repeat)

(* --- tech ----------------------------------------------------------- *)

let tech_cmd =
  let run () =
    List.iter
      (fun p ->
        Format.printf "%a@.@." Technology.Process.pp_evaluation
          (Technology.Process.evaluate p))
      Technology.Process.builtin
  in
  let info = Cmd.info "tech" ~doc:"Characterise the built-in technologies." in
  Cmd.v info Term.(const run $ const ())

let () =
  let info =
    Cmd.info "losac" ~version:"1.0.0"
      ~doc:"Layout-oriented synthesis of high performance analog circuits."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ size_cmd; synth_cmd; layout_cmd; verify_cmd; stats_cmd; tech_cmd ]))
